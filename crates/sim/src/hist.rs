//! Log-bucketed latency histogram.
//!
//! SLAs in the paper are defined over the 99th-percentile latency; tracking
//! that online over millions of simulated requests needs a compact sketch
//! rather than a sorted vector. This histogram uses geometrically sized
//! buckets with a configurable relative error (default 1%), the same idea
//! as HdrHistogram's log-linear layout but simplified to pure log spacing.

use serde::{Deserialize, Serialize};

/// Default relative error of quantile estimates.
const DEFAULT_GAMMA_ERR: f64 = 0.01;

/// A latency histogram over positive values with bounded relative error.
///
/// Values are recorded in milliseconds by convention, though any positive
/// unit works. Values below `min_value` are clamped into the first bucket.
///
/// # Examples
///
/// ```
/// use rhythm_sim::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for i in 1..=1000 {
///     h.record(i as f64);
/// }
/// let p99 = h.quantile(0.99);
/// assert!((p99 - 990.0).abs() / 990.0 < 0.02);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// `log(gamma)` where `gamma = (1 + err) / (1 - err)`.
    log_gamma: f64,
    /// Smallest distinguishable value; everything below lands in bucket 0.
    min_value: f64,
    /// Bucket counts, indexed by `ceil(log(v / min_value) / log_gamma)`.
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    max: f64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates a histogram with 1% relative error and 1 µs (0.001 ms)
    /// minimum value.
    pub fn new() -> Self {
        Self::with_error(DEFAULT_GAMMA_ERR, 1e-3)
    }

    /// Creates a histogram with the given relative error (`0 < err < 1`)
    /// and minimum distinguishable value (`> 0`).
    ///
    /// # Panics
    ///
    /// Panics if the parameters are out of range.
    pub fn with_error(err: f64, min_value: f64) -> Self {
        assert!(err > 0.0 && err < 1.0, "relative error must be in (0,1)");
        assert!(min_value > 0.0, "min_value must be positive");
        let gamma = (1.0 + err) / (1.0 - err);
        LatencyHistogram {
            log_gamma: gamma.ln(),
            min_value,
            counts: Vec::new(),
            total: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    fn bucket_index(&self, value: f64) -> usize {
        if value <= self.min_value {
            return 0;
        }
        ((value / self.min_value).ln() / self.log_gamma).ceil() as usize
    }

    /// The representative (upper-bound) value of bucket `i`.
    fn bucket_value(&self, i: usize) -> f64 {
        if i == 0 {
            return self.min_value;
        }
        self.min_value * (self.log_gamma * i as f64).exp()
    }

    /// Records one observation. Non-finite and non-positive values are
    /// clamped into the smallest bucket.
    pub fn record(&mut self, value: f64) {
        let v = if value.is_finite() && value > 0.0 {
            value
        } else {
            self.min_value
        };
        let idx = self.bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean of recorded values (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Exact maximum recorded value (0 if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The p-quantile with bounded relative error (0 if empty).
    pub fn quantile(&self, p: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bucket_value(i).min(self.max);
            }
        }
        self.max
    }

    /// The 99th percentile (the paper's default tail).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merges another histogram with identical parameters into this one.
    ///
    /// # Panics
    ///
    /// Panics if the histograms were built with different parameters.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        assert!(
            (self.log_gamma - other.log_gamma).abs() < 1e-12 && self.min_value == other.min_value,
            "cannot merge histograms with different layouts"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Clears all recorded observations, keeping the layout.
    pub fn reset(&mut self) {
        self.counts.clear();
        self.total = 0;
        self.sum = 0.0;
        self.max = 0.0;
    }
}

impl rhythm_snapshot::Snapshot for LatencyHistogram {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.f64(self.log_gamma);
        w.f64(self.min_value);
        w.u64(self.counts.len() as u64);
        for &c in &self.counts {
            w.u64(c);
        }
        w.u64(self.total);
        w.f64(self.sum);
        w.f64(self.max);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        let log_gamma = r.f64()?;
        let min_value = r.f64()?;
        let n = r.len(8)?;
        let mut counts = Vec::with_capacity(n);
        for _ in 0..n {
            counts.push(r.u64()?);
        }
        let total = r.u64()?;
        let sum = r.f64()?;
        let max = r.f64()?;
        if counts.iter().sum::<u64>() != total {
            return Err(rhythm_snapshot::SnapshotError::Corrupt(
                "histogram bucket counts do not sum to total".into(),
            ));
        }
        Ok(LatencyHistogram {
            log_gamma,
            min_value,
            counts,
            total,
            sum,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trip_is_bit_exact() {
        use rhythm_snapshot::{Reader, Snapshot, Writer};
        let mut h = LatencyHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 0.37);
        }
        let mut w = Writer::new();
        h.encode(&mut w);
        let bytes = w.into_bytes();
        let g = LatencyHistogram::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(g.count(), h.count());
        assert_eq!(g.sum().to_bits(), h.sum().to_bits());
        assert_eq!(g.max().to_bits(), h.max().to_bits());
        assert_eq!(g.quantile(0.99).to_bits(), h.quantile(0.99).to_bits());
        let mut w2 = Writer::new();
        g.encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LatencyHistogram::new();
        let xs: Vec<f64> = (1..=10_000).map(|i| i as f64 * 0.1).collect();
        for &x in &xs {
            h.record(x);
        }
        for &p in &[0.5, 0.9, 0.99, 0.999] {
            let exact = crate::stats::quantile(&xs, p);
            let approx = h.quantile(p);
            assert!(
                (approx - exact).abs() / exact < 0.025,
                "p={p} exact={exact} approx={approx}"
            );
        }
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn single_value() {
        let mut h = LatencyHistogram::new();
        h.record(42.0);
        assert_eq!(h.count(), 1);
        assert!((h.quantile(0.5) - 42.0).abs() / 42.0 < 0.02);
        assert_eq!(h.max(), 42.0);
        assert_eq!(h.mean(), 42.0);
    }

    #[test]
    fn clamps_bad_values() {
        let mut h = LatencyHistogram::new();
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(0.0);
        assert_eq!(h.count(), 4);
        assert!(h.quantile(1.0) <= 1e-3 + 1e-12);
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let mut h = LatencyHistogram::new();
        for x in [1.0, 2.0, 1000.0] {
            h.record(x);
        }
        assert!(h.quantile(1.0) <= h.max());
    }

    #[test]
    fn merge_matches_combined() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for i in 1..=500 {
            a.record(i as f64);
            all.record(i as f64);
        }
        for i in 500..=1000 {
            b.record(i as f64 * 2.0);
            all.record(i as f64 * 2.0);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.quantile(0.99), all.quantile(0.99));
        assert_eq!(a.max(), all.max());
    }

    #[test]
    #[should_panic(expected = "different layouts")]
    fn merge_layout_mismatch_panics() {
        let mut a = LatencyHistogram::with_error(0.01, 1e-3);
        let b = LatencyHistogram::with_error(0.05, 1e-3);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "different layouts")]
    fn merge_min_value_mismatch_panics() {
        let mut a = LatencyHistogram::with_error(0.01, 1e-3);
        let b = LatencyHistogram::with_error(0.01, 1.0);
        a.merge(&b);
    }

    #[test]
    fn clamps_below_min_value() {
        let mut h = LatencyHistogram::with_error(0.01, 1e-3);
        h.record(1e-9);
        h.record(5e-4);
        assert_eq!(h.count(), 2);
        // Both land in bucket 0: indistinguishable, reported at or below
        // min_value (the quantile is capped by the true max).
        assert!(h.quantile(1.0) <= 1e-3 + 1e-12);
        assert_eq!(h.max(), 5e-4);
    }

    #[test]
    fn quantile_p_is_clamped() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert_eq!(h.quantile(-0.5), h.quantile(0.0));
        assert_eq!(h.quantile(1.5), h.quantile(1.0));
    }

    #[test]
    fn reset_clears() {
        let mut h = LatencyHistogram::new();
        h.record(10.0);
        h.reset();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0.0);
        h.record(3.0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn p99_tracks_tail_shift() {
        let mut h = LatencyHistogram::new();
        for _ in 0..990 {
            h.record(1.0);
        }
        let before = h.p99();
        for _ in 0..20 {
            h.record(100.0);
        }
        assert!(h.p99() > before * 50.0);
    }
}
