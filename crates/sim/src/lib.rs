//! Deterministic discrete-event simulation substrate for the Rhythm
//! reproduction.
//!
//! The paper evaluates Rhythm on a four-machine cluster; this crate provides
//! the virtual-time machinery that replaces wall-clock cluster time:
//!
//! * [`time`] — nanosecond-resolution virtual time ([`SimTime`],
//!   [`SimDuration`]).
//! * [`calendar`] — a deterministic event calendar ([`Calendar`]) with
//!   stable FIFO ordering among simultaneous events.
//! * [`arena`] — a generation-keyed slab ([`Arena`]) backing the engine's
//!   in-flight request table without hashing or steady-state allocation.
//! * [`rng`] — seedable, splittable random-number streams ([`SimRng`]).
//! * [`dist`] — the sampling distributions used by the workload models
//!   (exponential, log-normal, gamma, Pareto, ...).
//! * [`stats`] — streaming statistics (Welford mean/variance, Pearson
//!   correlation, coefficient of variation) used by the contribution
//!   analyzer (paper §3.4).
//! * [`hist`] — a log-bucketed latency histogram for percentile queries
//!   (the 99th-percentile tail the SLA is defined over).
//! * [`window`] — sliding-window tail-latency tracking for the runtime
//!   controller (paper §3.5, Algorithm 2 reads the "current" tail).
//!
//! Everything in this crate is deterministic given a seed: two runs with the
//! same seed produce bit-identical results, which the test suite and the
//! figure-regeneration harness rely on.
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

pub mod arena;
pub mod calendar;
pub mod dist;
pub mod hist;
pub mod rng;
pub mod stats;
pub mod time;
pub mod window;

/// Layout description of every [`rhythm_snapshot::Snapshot`] impl in this
/// crate. Hashed into snapshot files; **bump the text whenever an encoding
/// here changes shape** so stale snapshots are refused instead of
/// misdecoded.
pub const SNAPSHOT_SCHEMA: &str = "rhythm-sim/v1: \
     SimTime=u64ns SimDuration=u64ns \
     SimRng=(seed:u64,xoshiro256++:[u64;4]) \
     Calendar=(now:u64,next_seq:u64,entries:[(at:u64,seq:u64,event)] sorted) \
     Arena=(slots:[(gen:u32,value:Option)],free:[u32]) Key=u64 \
     LatencyHistogram=(log_gamma:f64,min_value:f64,counts:[u64],total:u64,sum:f64,max:f64) \
     OnlineStats=(n:u64,mean:f64,m2:f64,min:f64,max:f64) \
     TailWindow=(slot_len:u64ns,slots:[(epoch:u64,hist)])";

pub use arena::Arena;
pub use calendar::Calendar;
pub use dist::{Dist, ResolvedDist};
pub use hist::LatencyHistogram;
pub use rng::SimRng;
pub use stats::{pearson, OnlineStats};
pub use time::{SimDuration, SimTime};
pub use window::TailWindow;
