//! Seedable, splittable random-number streams.
//!
//! Every stochastic element of the simulation (arrival processes, service
//! times, interference jitter, noise events) draws from its own [`SimRng`]
//! stream derived from a single experiment seed. Splitting streams by label
//! keeps components statistically independent *and* insulates each stream
//! from changes elsewhere in the simulation: adding a draw to one component
//! does not perturb any other component's sequence.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random stream.
///
/// Internally a [`StdRng`] seeded via SplitMix64 expansion of a
/// `(seed, label)` pair.
///
/// # Examples
///
/// ```
/// use rand::RngCore;
/// use rhythm_sim::SimRng;
///
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut s1 = SimRng::from_seed(42).split("arrivals");
/// let mut s2 = SimRng::from_seed(42).split("service");
/// assert_ne!(s1.next_u64(), s2.next_u64());
/// ```
pub struct SimRng {
    seed: u64,
    inner: StdRng,
}

/// SplitMix64 step: a high-quality 64-bit mixer used to derive stream seeds.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a label string, used to key split streams.
fn fnv1a(label: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl SimRng {
    /// Creates a stream from a bare 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        let mut key = [0u8; 32];
        for chunk in key.chunks_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        SimRng {
            seed,
            inner: StdRng::from_seed(key),
        }
    }

    /// Derives an independent child stream keyed by `label`.
    ///
    /// Children of the same parent with distinct labels are independent;
    /// the same `(seed, label)` pair always yields the same stream.
    pub fn split(&self, label: &str) -> SimRng {
        SimRng::from_seed(self.seed ^ fnv1a(label).rotate_left(17))
    }

    /// Derives an independent child stream keyed by an index (e.g. a
    /// machine or component id).
    pub fn split_idx(&self, label: &str, idx: u64) -> SimRng {
        SimRng::from_seed(self.seed ^ fnv1a(label).rotate_left(17) ^ splitmix64(&mut idx.clone()))
    }

    /// The seed this stream was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform sample in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "SimRng::below(0)");
        self.inner.gen_range(0..n)
    }

    /// A Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// A standard normal sample (Marsaglia polar method).
    pub fn standard_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.uniform() - 1.0;
            let v = 2.0 * self.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl rhythm_snapshot::Snapshot for SimRng {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u64(self.seed);
        for word in self.inner.state() {
            w.u64(word);
        }
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        let seed = r.u64()?;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.u64()?;
        }
        Ok(SimRng {
            seed,
            inner: StdRng::from_state(s),
        })
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(7);
        let mut b = SimRng::from_seed(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_is_deterministic_and_independent() {
        let root = SimRng::from_seed(99);
        let mut x1 = root.split("arrivals");
        let mut x2 = root.split("arrivals");
        assert_eq!(x1.next_u64(), x2.next_u64());
        let mut y = root.split("service");
        let mut x = root.split("arrivals");
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn split_idx_distinguishes_indices() {
        let root = SimRng::from_seed(5);
        let mut a = root.split_idx("machine", 0);
        let mut b = root.split_idx("machine", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = SimRng::from_seed(3);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut rng = SimRng::from_seed(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::from_seed(13);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::from_seed(17);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-5.0));
        assert!(rng.chance(5.0));
    }

    #[test]
    fn snapshot_resumes_mid_stream() {
        use rhythm_snapshot::{Reader, Snapshot, Writer};
        let mut rng = SimRng::from_seed(23);
        for _ in 0..1000 {
            rng.next_u64();
        }
        let mut w = Writer::new();
        rng.encode(&mut w);
        let bytes = w.into_bytes();
        let mut restored = SimRng::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(restored.seed(), rng.seed());
        for _ in 0..256 {
            assert_eq!(restored.next_u64(), rng.next_u64());
        }
        // Splitting the restored stream matches splitting the original.
        let mut sa = rng.split("tail");
        let mut sb = restored.split("tail");
        assert_eq!(sa.next_u64(), sb.next_u64());
    }

    #[test]
    fn below_bounds() {
        let mut rng = SimRng::from_seed(19);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
        assert_eq!(rng.below(1), 0);
    }
}
