//! Streaming statistics used by the contribution analyzer.
//!
//! The analyzer (paper §3.4) needs, per Servpod and per load level: the
//! mean sojourn time, its standard deviation (for the normalized
//! coefficient of variation, Equation 3) and the Pearson correlation
//! between per-load mean sojourn times and the tail latency (Equation 2).

use serde::{Deserialize, Serialize};

/// Numerically stable online mean/variance accumulator (Welford).
///
/// # Examples
///
/// ```
/// use rhythm_sim::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// True if no observation has been pushed.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n; 0 if fewer than 2 samples).
    pub fn population_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (divides by n-1; 0 if fewer than 2 samples).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Coefficient of variation: `std_dev / mean` (0 if the mean is 0).
    pub fn cov(&self) -> f64 {
        let m = self.mean();
        if m.abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Standard error of the mean: `sqrt(sample_variance / n)`.
    ///
    /// This is the `sqrt(1/(m(m-1)) * sum (x - mean)^2)` term of the
    /// paper's Equation 3.
    pub fn std_error(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.sample_variance() / self.n as f64).sqrt()
        }
    }

    /// Smallest observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl rhythm_snapshot::Snapshot for OnlineStats {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u64(self.n);
        w.f64(self.mean);
        w.f64(self.m2);
        w.f64(self.min);
        w.f64(self.max);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(OnlineStats {
            n: r.u64()?,
            mean: r.f64()?,
            m2: r.f64()?,
            min: r.f64()?,
            max: r.f64()?,
        })
    }
}

/// Pearson correlation coefficient between two equal-length series
/// (the paper's Equation 2).
///
/// Returns 0 when either series is constant or the series are shorter
/// than 2 elements.
///
/// # Panics
///
/// Panics if the series lengths differ.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson: length mismatch");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return 0.0;
    }
    (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
}

/// The exact p-quantile of a sample by sorting (nearest-rank method).
///
/// Returns 0 for an empty slice. `p` is clamped to `[0, 1]`.
pub fn quantile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut xs = samples.to_vec();
    xs.sort_by(f64::total_cmp);
    let p = p.clamp(0.0, 1.0);
    let rank = ((p * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
    xs[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [1.0, 2.5, 3.0, 4.5, 10.0, -2.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -2.0);
        assert_eq!(s.max(), 10.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.cov(), 0.0);
        assert_eq!(s.std_error(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn single_sample() {
        let mut s = OnlineStats::new();
        s.push(5.0);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - all.sample_variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);

        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.mean(), a.mean());
    }

    #[test]
    fn cov_is_relative_dispersion() {
        let mut tight = OnlineStats::new();
        let mut wide = OnlineStats::new();
        for i in 0..100 {
            tight.push(100.0 + (i % 2) as f64);
            wide.push(100.0 + (i % 2) as f64 * 50.0);
        }
        assert!(wide.cov() > tight.cov());
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_series_is_zero() {
        let xs = [5.0, 5.0, 5.0];
        let ys = [1.0, 2.0, 3.0];
        assert_eq!(pearson(&xs, &ys), 0.0);
        assert_eq!(pearson(&ys, &xs), 0.0);
    }

    #[test]
    fn pearson_uncorrelated_near_zero() {
        // Alternating independent pattern.
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 7919) % 1000) as f64).collect();
        let ys: Vec<f64> = (0..1000).map(|i| ((i * 104729) % 1000) as f64).collect();
        assert!(pearson(&xs, &ys).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn pearson_length_mismatch_panics() {
        pearson(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn quantile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(quantile(&xs, 0.99), 99.0);
        assert_eq!(quantile(&xs, 0.5), 50.0);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 100.0);
        assert_eq!(quantile(&[], 0.5), 0.0);
        assert_eq!(quantile(&[7.0], 0.99), 7.0);
    }
}
