//! Virtual time for the discrete-event simulator.
//!
//! Time is a monotone `u64` nanosecond counter starting at zero. Using a
//! fixed-point integer representation (rather than `f64` seconds) keeps the
//! calendar ordering exact and the simulation deterministic across
//! platforms.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The greatest representable instant; used as an "infinitely far"
    /// sentinel for deadlines that are never reached.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for reporting only; never used for
    /// ordering).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; the simulator never asks
    /// for a negative elapsed time.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since called with a later `earlier`"),
        )
    }

    /// Saturating difference: zero if `earlier` is later than `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond and clamping negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 || !s.is_finite() {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Creates a duration from fractional milliseconds, clamping negatives
    /// to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Multiplies the duration by a non-negative factor, rounding to the
    /// nearest nanosecond.
    pub fn mul_f64(self, factor: f64) -> Self {
        Self::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl rhythm_snapshot::Snapshot for SimTime {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u64(self.0);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(SimTime(r.u64()?))
    }
}

impl rhythm_snapshot::Snapshot for SimDuration {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u64(self.0);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(SimDuration(r.u64()?))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_secs_f64(), 1.0);
        assert_eq!(SimDuration::from_millis(250).as_millis_f64(), 250.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert_eq!((t - SimTime::from_secs(1)).as_millis_f64(), 500.0);
        let mut u = SimTime::ZERO;
        u += SimDuration::from_micros(7);
        assert_eq!(u.as_nanos(), 7_000);
    }

    #[test]
    fn since_and_saturating() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(3);
        assert_eq!(b.since(a).as_secs_f64(), 2.0);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "later")]
    fn since_panics_on_negative() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e-9).as_nanos(), 1);
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(10).mul_f64(2.5);
        assert_eq!(d.as_millis_f64(), 25.0);
        assert_eq!(SimDuration::from_millis(10).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimDuration::from_nanos(10) < SimDuration::from_micros(1));
        assert_eq!(SimTime::MAX.as_nanos(), u64::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_micros(1500)), "1.500ms");
    }
}
