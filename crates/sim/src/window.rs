//! Sliding-window tail-latency tracking.
//!
//! The top-level controller (paper §3.5.2, Algorithm 2) runs every 2
//! seconds and compares the *current* tail latency against the SLA target.
//! "Current" means over a recent window, not since the beginning of time —
//! otherwise an early burst would poison the slack estimate forever. This
//! module provides a ring of per-interval histograms whose union
//! approximates the tail over the last `window` of virtual time.

use crate::hist::LatencyHistogram;
use crate::time::{SimDuration, SimTime};

/// Tail latency over a sliding window of virtual time.
///
/// The window is divided into `slots` sub-intervals; each recorded sample
/// lands in the slot of its timestamp, and expired slots are dropped as
/// time advances. Quantile queries merge the live slots.
///
/// # Examples
///
/// ```
/// use rhythm_sim::{SimDuration, SimTime, TailWindow};
///
/// let mut w = TailWindow::new(SimDuration::from_secs(10), 10);
/// w.record(SimTime::from_secs(1), 5.0);
/// w.record(SimTime::from_secs(2), 7.0);
/// assert!(w.quantile(SimTime::from_secs(3), 0.99) >= 5.0);
/// // 20 seconds later both samples have expired.
/// assert_eq!(w.quantile(SimTime::from_secs(23), 0.99), 0.0);
/// ```
#[derive(Clone, Debug)]
pub struct TailWindow {
    slot_len: SimDuration,
    slots: Vec<Slot>,
}

#[derive(Clone, Debug)]
struct Slot {
    /// Index of the window slot this histogram currently holds
    /// (`timestamp / slot_len`); `u64::MAX` marks an empty slot.
    epoch: u64,
    hist: LatencyHistogram,
}

impl TailWindow {
    /// Creates a window of length `window` with `slots` sub-intervals.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0` or `window` is zero.
    pub fn new(window: SimDuration, slots: usize) -> Self {
        assert!(slots > 0, "TailWindow needs at least one slot");
        assert!(!window.is_zero(), "TailWindow window must be positive");
        let slot_len = SimDuration::from_nanos((window.as_nanos() / slots as u64).max(1));
        TailWindow {
            slot_len,
            slots: (0..slots)
                .map(|_| Slot {
                    epoch: u64::MAX,
                    hist: LatencyHistogram::new(),
                })
                .collect(),
        }
    }

    fn epoch_of(&self, at: SimTime) -> u64 {
        at.as_nanos() / self.slot_len.as_nanos()
    }

    /// Records a latency sample observed at time `at`.
    pub fn record(&mut self, at: SimTime, latency_ms: f64) {
        let epoch = self.epoch_of(at);
        let idx = (epoch % self.slots.len() as u64) as usize;
        let slot = &mut self.slots[idx];
        if slot.epoch != epoch {
            slot.hist.reset();
            slot.epoch = epoch;
        }
        slot.hist.record(latency_ms);
    }

    /// The p-quantile over samples whose slots are still inside the window
    /// ending at `now`. Returns 0 if the window is empty.
    pub fn quantile(&self, now: SimTime, p: f64) -> f64 {
        let mut merged = LatencyHistogram::new();
        let current = self.epoch_of(now);
        let live = self.slots.len() as u64;
        for slot in &self.slots {
            if slot.epoch != u64::MAX && current.saturating_sub(slot.epoch) < live {
                merged.merge(&slot.hist);
            }
        }
        merged.quantile(p)
    }

    /// Number of live samples in the window ending at `now`.
    pub fn count(&self, now: SimTime) -> u64 {
        let current = self.epoch_of(now);
        let live = self.slots.len() as u64;
        self.slots
            .iter()
            .filter(|s| s.epoch != u64::MAX && current.saturating_sub(s.epoch) < live)
            .map(|s| s.hist.count())
            .sum()
    }

    /// Drops all samples.
    pub fn reset(&mut self) {
        for slot in &mut self.slots {
            slot.epoch = u64::MAX;
            slot.hist.reset();
        }
    }
}

impl rhythm_snapshot::Snapshot for TailWindow {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        self.slot_len.encode(w);
        w.u64(self.slots.len() as u64);
        for slot in &self.slots {
            w.u64(slot.epoch);
            slot.hist.encode(w);
        }
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        let slot_len = SimDuration::decode(r)?;
        if slot_len.is_zero() {
            return Err(rhythm_snapshot::SnapshotError::Corrupt(
                "tail window slot length must be positive".into(),
            ));
        }
        let n = r.len(8)?;
        if n == 0 {
            return Err(rhythm_snapshot::SnapshotError::Corrupt(
                "tail window needs at least one slot".into(),
            ));
        }
        let mut slots = Vec::with_capacity(n);
        for _ in 0..n {
            let epoch = r.u64()?;
            let hist = LatencyHistogram::decode(r)?;
            slots.push(Slot { epoch, hist });
        }
        Ok(TailWindow { slot_len, slots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn recent_samples_visible() {
        let mut w = TailWindow::new(SimDuration::from_secs(10), 5);
        w.record(secs(1), 10.0);
        w.record(secs(2), 20.0);
        w.record(secs(3), 30.0);
        let q = w.quantile(secs(4), 1.0);
        assert!((q - 30.0).abs() / 30.0 < 0.02, "q={q}");
        assert_eq!(w.count(secs(4)), 3);
    }

    #[test]
    fn old_samples_expire() {
        let mut w = TailWindow::new(SimDuration::from_secs(10), 5);
        w.record(secs(0), 100.0);
        assert!(w.quantile(secs(5), 0.99) > 0.0);
        assert_eq!(w.quantile(secs(30), 0.99), 0.0);
        assert_eq!(w.count(secs(30)), 0);
    }

    #[test]
    fn slot_reuse_overwrites_stale_epoch() {
        let mut w = TailWindow::new(SimDuration::from_secs(10), 5);
        w.record(secs(1), 5.0);
        // 10+ window lengths later, same ring index, different epoch.
        w.record(secs(101), 50.0);
        let q = w.quantile(secs(102), 1.0);
        assert!((q - 50.0).abs() / 50.0 < 0.02, "q={q}");
        assert_eq!(w.count(secs(102)), 1);
    }

    #[test]
    fn rolling_window_tracks_shift() {
        let mut w = TailWindow::new(SimDuration::from_secs(4), 4);
        for t in 0..4 {
            w.record(secs(t), 1.0);
        }
        let low = w.quantile(secs(3), 0.99);
        assert!(low < 2.0);
        for t in 4..8 {
            w.record(secs(t), 100.0);
        }
        let high = w.quantile(secs(8), 0.99);
        assert!(high > 50.0, "high={high}");
    }

    #[test]
    fn reset_clears_everything() {
        let mut w = TailWindow::new(SimDuration::from_secs(10), 5);
        w.record(secs(1), 5.0);
        w.reset();
        assert_eq!(w.count(secs(1)), 0);
        assert_eq!(w.quantile(secs(1), 0.5), 0.0);
    }

    #[test]
    fn snapshot_round_trip_keeps_live_samples() {
        use rhythm_snapshot::{Reader, Snapshot, Writer};
        let mut w = TailWindow::new(SimDuration::from_secs(10), 5);
        w.record(secs(1), 10.0);
        w.record(secs(4), 30.0);
        let mut buf = Writer::new();
        w.encode(&mut buf);
        let bytes = buf.into_bytes();
        let r = TailWindow::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(r.count(secs(5)), w.count(secs(5)));
        assert_eq!(
            r.quantile(secs(5), 0.99).to_bits(),
            w.quantile(secs(5), 0.99).to_bits()
        );
        let mut buf2 = Writer::new();
        r.encode(&mut buf2);
        assert_eq!(buf2.into_bytes(), bytes);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_panics() {
        TailWindow::new(SimDuration::from_secs(1), 0);
    }
}
