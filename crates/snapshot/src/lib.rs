//! Durable state: a hand-rolled, dependency-free binary codec plus the
//! [`Snapshot`] capture/restore trait the rest of the workspace
//! implements.
//!
//! A snapshot file is a versioned container:
//!
//! ```text
//! magic   b"RSNP"                      (4 bytes)
//! version u32 LE                       (FORMAT_VERSION)
//! schemas u64 count, then per schema:  (crate name, FNV-1a layout hash)
//! sections u64 count, then per section: name, u64 byte length, bytes
//! ```
//!
//! Every encoder in the workspace follows the same rules, which together
//! make snapshot bytes *deterministic*: identical state encodes to
//! identical bytes on every platform.
//!
//! * All integers are little-endian fixed width; lengths are `u64`.
//! * `f64` is encoded as its IEEE-754 bit pattern (`to_bits`), never as
//!   text — a restored accumulator continues bit-identically.
//! * Collections encode in their iteration order, which for the
//!   workspace's state types is always a deterministic order (`Vec`,
//!   `VecDeque`, `BTreeMap`); `HashMap`/`HashSet` are banned from
//!   snapshot modules (rhythm-lint rule S01).
//! * Decoders never panic on foreign bytes: a short buffer is
//!   [`SnapshotError::Truncated`], an out-of-range tag is
//!   [`SnapshotError::Corrupt`], and a magic/version/schema mismatch is
//!   [`SnapshotError::Incompatible`] — garbage in never becomes garbage
//!   state.
//!
//! The schema table is the compatibility contract: each crate that
//! contributes state declares a layout-description string (see e.g.
//! `rhythm_sim::SNAPSHOT_SCHEMA`) whose [`schema_hash`] is written into
//! the header. [`SnapshotFile::verify_schemas`] refuses to decode a file
//! whose hashes do not match the code doing the decoding, so a field
//! added to any state type fails loudly instead of mis-aligning every
//! later section.
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// File magic: the first four bytes of every snapshot.
pub const MAGIC: [u8; 4] = *b"RSNP";

/// Container format version. Bump on any change to the container layout
/// itself; per-crate layout changes are caught by the schema hashes.
pub const FORMAT_VERSION: u32 = 1;

/// Why a snapshot could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file comes from a different format version or a different
    /// code layout (schema hash mismatch) — decoding would misread
    /// every byte after the divergence.
    Incompatible {
        /// What the running code expected (version or `crate=hash`).
        expected: String,
        /// What the file declared.
        found: String,
    },
    /// The buffer ended before the declared data did.
    Truncated,
    /// Structurally invalid bytes: a bad tag, an impossible length, a
    /// missing section.
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Incompatible { expected, found } => {
                write!(f, "incompatible snapshot: expected {expected}, found {found}")
            }
            SnapshotError::Truncated => write!(f, "truncated snapshot"),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a over a byte string. Used for schema hashes and for snapshot
/// byte fingerprints (the same hash the cluster uses for machine
/// fingerprints, so goldens read uniformly).
pub const fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        i += 1;
    }
    hash
}

/// Hash of a crate's layout-description string.
pub const fn schema_hash(schema: &str) -> u64 {
    fnv1a(schema.as_bytes())
}

/// An append-only little-endian byte sink.
#[derive(Clone, Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer into its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i16(&mut self, v: i16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// IEEE-754 bit pattern — restores bit-identically, NaN included.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Length-prefixed UTF-8.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
}

/// A cursor over snapshot bytes. Every read checks bounds and returns
/// [`SnapshotError::Truncated`] instead of panicking.
#[derive(Clone, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("bool byte {b}"))),
        }
    }

    pub fn u16(&mut self) -> Result<u16, SnapshotError> {
        // PANIC: take(n) returned exactly n bytes.
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len checked")))
    }

    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        // PANIC: take(n) returned exactly n bytes.
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len checked")))
    }

    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        // PANIC: take(n) returned exactly n bytes.
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len checked")))
    }

    pub fn u128(&mut self) -> Result<u128, SnapshotError> {
        // PANIC: take(n) returned exactly n bytes.
        Ok(u128::from_le_bytes(self.take(16)?.try_into().expect("len checked")))
    }

    pub fn i16(&mut self) -> Result<i16, SnapshotError> {
        // PANIC: take(n) returned exactly n bytes.
        Ok(i16::from_le_bytes(self.take(2)?.try_into().expect("len checked")))
    }

    pub fn i32(&mut self) -> Result<i32, SnapshotError> {
        // PANIC: take(n) returned exactly n bytes.
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("len checked")))
    }

    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        // PANIC: take(n) returned exactly n bytes.
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("len checked")))
    }

    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A length declared by the stream, validated against the bytes
    /// actually left (`min_elem_bytes` is the smallest possible encoding
    /// of one element) so corrupt lengths fail instead of allocating.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        let floor = n.saturating_mul(min_elem_bytes.max(1) as u64);
        if floor > self.remaining() as u64 {
            return Err(SnapshotError::Truncated);
        }
        Ok(n as usize)
    }

    /// Length-prefixed UTF-8.
    pub fn str(&mut self) -> Result<String, SnapshotError> {
        let n = self.len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Corrupt("non-UTF-8 string".into()))
    }

    /// Length-prefixed bytes.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.len(1)?;
        self.take(n)
    }
}

/// Deterministic capture/restore of one value.
///
/// Implementations live in the *defining module* of each state type (so
/// private fields stay private) and must satisfy the round-trip law
/// `decode(encode(x)) == x` — property-tested for the stateful types in
/// `tests/properties.rs`.
pub trait Snapshot: Sized {
    /// Appends this value's bytes to `w`.
    fn encode(&self, w: &mut Writer);
    /// Reads one value back. Must consume exactly the bytes `encode`
    /// wrote.
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError>;
}

macro_rules! snapshot_prim {
    ($($t:ty => $wf:ident),* $(,)?) => {$(
        impl Snapshot for $t {
            fn encode(&self, w: &mut Writer) {
                w.$wf(*self);
            }
            fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
                r.$wf()
            }
        }
    )*};
}

snapshot_prim! {
    u8 => u8,
    u16 => u16,
    u32 => u32,
    u64 => u64,
    u128 => u128,
    i16 => i16,
    i32 => i32,
    i64 => i64,
    f64 => f64,
    bool => bool,
}

impl Snapshot for String {
    fn encode(&self, w: &mut Writer) {
        w.str(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        r.str()
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.u8(0),
            Some(v) => {
                w.u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(SnapshotError::Corrupt(format!("Option tag {t}"))),
        }
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let n = r.len(1)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for VecDeque<T> {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let n = r.len(1)?;
        let mut out = VecDeque::with_capacity(n);
        for _ in 0..n {
            out.push_back(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<K: Snapshot + Ord, V: Snapshot> Snapshot for BTreeMap<K, V> {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.len() as u64);
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let n = r.len(2)?;
        let mut out = BTreeMap::new();
        for _ in 0..n {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Snapshot + Ord> Snapshot for BTreeSet<T> {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.len() as u64);
        for v in self {
            v.encode(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let n = r.len(1)?;
        let mut out = BTreeSet::new();
        for _ in 0..n {
            out.insert(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot> Snapshot for (A, B, C) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl<A: Snapshot, B: Snapshot, C: Snapshot, D: Snapshot> Snapshot for (A, B, C, D) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
        self.3.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?, D::decode(r)?))
    }
}

/// Assembles a snapshot file: schema table plus named sections.
#[derive(Clone, Debug, Default)]
pub struct SnapshotBuilder {
    schemas: Vec<(String, u64)>,
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// An empty builder.
    pub fn new() -> SnapshotBuilder {
        SnapshotBuilder::default()
    }

    /// Declares one crate's schema hash.
    pub fn schema(&mut self, crate_name: &str, hash: u64) {
        self.schemas.push((crate_name.to_string(), hash));
    }

    /// Appends one named section.
    pub fn section(&mut self, name: &str, body: Writer) {
        self.sections.push((name.to_string(), body.into_bytes()));
    }

    /// Serializes the container. Identical builder contents produce
    /// identical bytes.
    pub fn finish(self) -> Vec<u8> {
        let mut w = Writer::new();
        w.raw(&MAGIC);
        w.u32(FORMAT_VERSION);
        w.u64(self.schemas.len() as u64);
        for (name, hash) in &self.schemas {
            w.str(name);
            w.u64(*hash);
        }
        w.u64(self.sections.len() as u64);
        for (name, body) in &self.sections {
            w.str(name);
            w.bytes(body);
        }
        w.into_bytes()
    }
}

/// A parsed snapshot container: validated header plus section table.
#[derive(Clone, Debug)]
pub struct SnapshotFile {
    /// The file's declared format version (always [`FORMAT_VERSION`]
    /// after a successful parse).
    pub version: u32,
    schemas: Vec<(String, u64)>,
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotFile {
    /// Parses and validates the container framing: magic, version,
    /// schema table, section table. Section *bodies* are not decoded —
    /// that happens against [`SnapshotFile::section`] readers.
    pub fn parse(bytes: &[u8]) -> Result<SnapshotFile, SnapshotError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(SnapshotError::Incompatible {
                // PANIC: MAGIC is a const ASCII byte string.
                expected: format!("magic {:?}", std::str::from_utf8(&MAGIC).expect("ascii")),
                found: format!("magic {magic:?}"),
            });
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::Incompatible {
                expected: format!("format v{FORMAT_VERSION}"),
                found: format!("format v{version}"),
            });
        }
        let n_schemas = r.len(9)?;
        let mut schemas = Vec::with_capacity(n_schemas);
        for _ in 0..n_schemas {
            let name = r.str()?;
            let hash = r.u64()?;
            schemas.push((name, hash));
        }
        let n_sections = r.len(9)?;
        let mut sections = Vec::with_capacity(n_sections);
        for _ in 0..n_sections {
            let name = r.str()?;
            let body = r.bytes()?.to_vec();
            sections.push((name, body));
        }
        if !r.is_empty() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after the last section",
                r.remaining()
            )));
        }
        Ok(SnapshotFile {
            version,
            schemas,
            sections,
        })
    }

    /// The declared (crate, schema hash) table.
    pub fn schemas(&self) -> &[(String, u64)] {
        &self.schemas
    }

    /// Section names in file order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.iter().map(|(n, _)| n.as_str())
    }

    /// Checks the file's schema table against what the running code
    /// expects: every expected crate must be present with the same hash.
    pub fn verify_schemas(&self, expected: &[(&str, u64)]) -> Result<(), SnapshotError> {
        for (name, hash) in expected {
            match self.schemas.iter().find(|(n, _)| n == name) {
                Some((_, found)) if found == hash => {}
                Some((_, found)) => {
                    return Err(SnapshotError::Incompatible {
                        expected: format!("{name}={hash:#018x}"),
                        found: format!("{name}={found:#018x}"),
                    });
                }
                None => {
                    return Err(SnapshotError::Incompatible {
                        expected: format!("{name}={hash:#018x}"),
                        found: format!("{name} absent"),
                    });
                }
            }
        }
        Ok(())
    }

    /// A reader over one section's bytes.
    pub fn section(&self, name: &str) -> Result<Reader<'_>, SnapshotError> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, body)| Reader::new(body))
            .ok_or_else(|| SnapshotError::Corrupt(format!("missing section `{name}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Snapshot + PartialEq + std::fmt::Debug>(v: T) {
        let mut w = Writer::new();
        v.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = T::decode(&mut r).expect("decode");
        assert_eq!(back, v);
        assert!(r.is_empty(), "decode consumed exactly the encoding");
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(u8::MAX);
        round_trip(u16::MAX);
        round_trip(0xdead_beefu32);
        round_trip(u64::MAX);
        round_trip(u128::MAX);
        round_trip(i64::MIN);
        round_trip(-1i32);
        round_trip(-1i16);
        round_trip(true);
        round_trip(false);
        round_trip(String::from("héllo"));
        round_trip(String::new());
    }

    #[test]
    fn f64_round_trips_bit_exact() {
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE] {
            let mut w = Writer::new();
            v.encode(&mut w);
            let bytes = w.into_bytes();
            let back = f64::decode(&mut Reader::new(&bytes)).unwrap();
            assert_eq!(back.to_bits(), v.to_bits());
        }
        // NaN payload survives too.
        let nan = f64::from_bits(0x7ff8_0000_0000_1234);
        let mut w = Writer::new();
        nan.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(
            f64::decode(&mut Reader::new(&bytes)).unwrap().to_bits(),
            nan.to_bits()
        );
    }

    #[test]
    fn containers_round_trip() {
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip(VecDeque::from([(1u64, 2u32), (3, 4)]));
        round_trip(BTreeMap::from([(String::from("a"), 1u64), (String::from("b"), 2)]));
        round_trip(BTreeSet::from([(3u8, 9u64, -2i64, 4u64), (1, 2, 3, 4)]));
        round_trip((1u8, 2u64, -3i64));
    }

    #[test]
    fn identical_state_identical_bytes() {
        let enc = |m: &BTreeMap<String, f64>| {
            let mut w = Writer::new();
            m.encode(&mut w);
            w.into_bytes()
        };
        let a = BTreeMap::from([(String::from("x"), 1.5), (String::from("y"), -0.0)]);
        let b = a.clone();
        assert_eq!(enc(&a), enc(&b));
    }

    #[test]
    fn truncated_reads_error() {
        let mut w = Writer::new();
        vec![1u64, 2, 3].encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let err = Vec::<u64>::decode(&mut Reader::new(&bytes[..cut]));
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn absurd_length_is_truncated_not_oom() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // Claims 2^64-1 elements.
        let bytes = w.into_bytes();
        assert_eq!(
            Vec::<u64>::decode(&mut Reader::new(&bytes)),
            Err(SnapshotError::Truncated)
        );
    }

    #[test]
    fn bad_tags_are_corrupt() {
        assert!(matches!(
            Option::<u8>::decode(&mut Reader::new(&[9, 0])),
            Err(SnapshotError::Corrupt(_))
        ));
        assert!(matches!(
            bool::decode(&mut Reader::new(&[2])),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    fn demo_file() -> Vec<u8> {
        let mut b = SnapshotBuilder::new();
        b.schema("rhythm-sim", schema_hash("rng:seed,state"));
        b.schema("rhythm-cluster", schema_hash("sched:v1"));
        let mut body = Writer::new();
        body.u64(42);
        b.section("meta", body);
        let mut body = Writer::new();
        body.str("payload");
        b.section("scheduler", body);
        b.finish()
    }

    #[test]
    fn container_round_trips() {
        let bytes = demo_file();
        let f = SnapshotFile::parse(&bytes).unwrap();
        assert_eq!(f.version, FORMAT_VERSION);
        assert_eq!(f.schemas().len(), 2);
        assert_eq!(f.section_names().collect::<Vec<_>>(), vec!["meta", "scheduler"]);
        assert_eq!(f.section("meta").unwrap().u64().unwrap(), 42);
        assert_eq!(f.section("scheduler").unwrap().str().unwrap(), "payload");
        f.verify_schemas(&[("rhythm-sim", schema_hash("rng:seed,state"))])
            .unwrap();
    }

    #[test]
    fn deterministic_container_bytes() {
        assert_eq!(demo_file(), demo_file());
    }

    #[test]
    fn bad_magic_is_incompatible() {
        let mut bytes = demo_file();
        bytes[0] = b'X';
        assert!(matches!(
            SnapshotFile::parse(&bytes),
            Err(SnapshotError::Incompatible { .. })
        ));
    }

    #[test]
    fn future_version_is_incompatible() {
        let mut bytes = demo_file();
        bytes[4] = 0xFF; // version LE low byte
        let err = SnapshotFile::parse(&bytes).unwrap_err();
        match err {
            SnapshotError::Incompatible { expected, found } => {
                assert!(expected.contains(&format!("v{FORMAT_VERSION}")), "{expected}");
                assert!(found.contains("v255"), "{found}");
            }
            other => panic!("expected Incompatible, got {other:?}"),
        }
    }

    #[test]
    fn schema_mismatch_is_incompatible() {
        let bytes = demo_file();
        let f = SnapshotFile::parse(&bytes).unwrap();
        let err = f
            .verify_schemas(&[("rhythm-sim", schema_hash("rng:seed,state,EXTRA"))])
            .unwrap_err();
        assert!(matches!(err, SnapshotError::Incompatible { .. }));
        let err = f.verify_schemas(&[("rhythm-missing", 1)]).unwrap_err();
        assert!(matches!(err, SnapshotError::Incompatible { .. }));
    }

    #[test]
    fn truncated_file_errors() {
        let bytes = demo_file();
        for cut in 0..bytes.len() {
            assert!(
                SnapshotFile::parse(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_corrupt() {
        let mut bytes = demo_file();
        bytes.push(0);
        assert!(matches!(
            SnapshotFile::parse(&bytes),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn missing_section_is_corrupt() {
        let f = SnapshotFile::parse(&demo_file()).unwrap();
        assert!(matches!(
            f.section("engines"),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn fnv1a_matches_reference_vector() {
        // FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
