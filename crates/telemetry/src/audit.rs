//! The decision audit trail: one record per controller tick, carrying
//! everything Algorithm 2 looked at when it chose an action.

use crate::event::ActionCode;
use serde_json::Value;

/// The BE population and resource envelope on a machine, captured before
/// and after a controller tick so the audit trail shows what each action
/// actually moved.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BeSnapshot {
    /// BE instances present (running + suspended).
    pub instances: u32,
    /// BE instances currently running.
    pub running: u32,
    /// Cores granted to BE.
    pub cores: u32,
    /// LLC ways granted to BE.
    pub llc_ways: u32,
    /// BE core frequency in MHz.
    pub freq_mhz: u32,
    /// BE network bandwidth ceiling in Mbit/s.
    pub net_mbps: u32,
}

impl BeSnapshot {
    fn to_value(self) -> Value {
        Value::Object(vec![
            ("instances".into(), Value::UInt(self.instances as u64)),
            ("running".into(), Value::UInt(self.running as u64)),
            ("cores".into(), Value::UInt(self.cores as u64)),
            ("llc_ways".into(), Value::UInt(self.llc_ways as u64)),
            ("freq_mhz".into(), Value::UInt(self.freq_mhz as u64)),
            ("net_mbps".into(), Value::UInt(self.net_mbps as u64)),
        ])
    }
}

/// Which branch of Algorithm 2 fired. Mirrors the decision ladder in
/// `rhythm-controller`'s `ThresholdPolicy::decide`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trigger {
    /// `slack < 0`: the measured tail already exceeds the SLA.
    SlaViolated,
    /// `load > loadlimit`: LC load is above the safe co-location point.
    LoadAboveLimit,
    /// `slack < slacklimit / 2`: headroom is less than half the limit.
    SlackBelowHalfLimit,
    /// `slack < slacklimit`: headroom is below the limit.
    SlackBelowLimit,
    /// None of the above: comfortable headroom.
    ComfortableSlack,
}

impl Trigger {
    /// Classifies a measurement against the thresholds, mirroring the
    /// ladder in Algorithm 2 (same order, same comparisons).
    pub fn classify(load: f64, slack: f64, loadlimit: f64, slacklimit: f64) -> Trigger {
        if slack < 0.0 {
            Trigger::SlaViolated
        } else if load > loadlimit {
            Trigger::LoadAboveLimit
        } else if slack < slacklimit / 2.0 {
            Trigger::SlackBelowHalfLimit
        } else if slack < slacklimit {
            Trigger::SlackBelowLimit
        } else {
            Trigger::ComfortableSlack
        }
    }

    /// Snake-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Trigger::SlaViolated => "sla_violated",
            Trigger::LoadAboveLimit => "load_above_limit",
            Trigger::SlackBelowHalfLimit => "slack_below_half_limit",
            Trigger::SlackBelowLimit => "slack_below_limit",
            Trigger::ComfortableSlack => "comfortable_slack",
        }
    }

    /// The condition as a human-readable comparison.
    pub fn explain(self, load: f64, slack: f64, loadlimit: f64, slacklimit: f64) -> String {
        match self {
            Trigger::SlaViolated => {
                format!("slack {slack:.3} < 0 (tail already beyond the SLA)")
            }
            Trigger::LoadAboveLimit => {
                format!("load {load:.3} > loadlimit {loadlimit:.3}")
            }
            Trigger::SlackBelowHalfLimit => {
                format!(
                    "slack {slack:.3} < slacklimit/2 {:.3}",
                    slacklimit / 2.0
                )
            }
            Trigger::SlackBelowLimit => {
                format!("slack {slack:.3} < slacklimit {slacklimit:.3}")
            }
            Trigger::ComfortableSlack => {
                format!("slack {slack:.3} >= slacklimit {slacklimit:.3}")
            }
        }
    }
}

impl rhythm_snapshot::Snapshot for BeSnapshot {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u32(self.instances);
        w.u32(self.running);
        w.u32(self.cores);
        w.u32(self.llc_ways);
        w.u32(self.freq_mhz);
        w.u32(self.net_mbps);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(BeSnapshot {
            instances: r.u32()?,
            running: r.u32()?,
            cores: r.u32()?,
            llc_ways: r.u32()?,
            freq_mhz: r.u32()?,
            net_mbps: r.u32()?,
        })
    }
}

impl rhythm_snapshot::Snapshot for Trigger {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u8(match self {
            Trigger::SlaViolated => 0,
            Trigger::LoadAboveLimit => 1,
            Trigger::SlackBelowHalfLimit => 2,
            Trigger::SlackBelowLimit => 3,
            Trigger::ComfortableSlack => 4,
        });
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(match r.u8()? {
            0 => Trigger::SlaViolated,
            1 => Trigger::LoadAboveLimit,
            2 => Trigger::SlackBelowHalfLimit,
            3 => Trigger::SlackBelowLimit,
            4 => Trigger::ComfortableSlack,
            t => {
                return Err(rhythm_snapshot::SnapshotError::Corrupt(format!(
                    "unknown trigger tag {t}"
                )))
            }
        })
    }
}

/// One controller decision with its full causal context.
#[derive(Clone, Debug)]
pub struct AuditRecord {
    /// Virtual time of the tick, in seconds.
    pub t_s: f64,
    /// Machine (Servpod host) index within the engine.
    pub machine: u32,
    /// Name of the Servpod hosted on the machine.
    pub pod: String,
    /// The action Algorithm 2 chose.
    pub action: ActionCode,
    /// Which branch of the ladder fired.
    pub trigger: Trigger,
    /// Measured LC load fraction.
    pub load: f64,
    /// The `loadlimit` threshold in force.
    pub loadlimit: f64,
    /// Measured slack, `(SLA - tail) / SLA`.
    pub slack: f64,
    /// The `slacklimit` threshold in force.
    pub slacklimit: f64,
    /// Measured tail latency in ms.
    pub tail_ms: f64,
    /// The SLA target in ms.
    pub sla_ms: f64,
    /// Index of the Servpod stage with the highest mean sojourn over the
    /// last tick, if any request finished in the window.
    pub hot_pod: Option<u32>,
    /// Name of that stage (empty when `hot_pod` is `None`).
    pub hot_pod_name: String,
    /// Mean sojourn of that stage over the last tick, in ms.
    pub hot_pod_ms: f64,
    /// BE population before the action was applied.
    pub before: BeSnapshot,
    /// BE population after subcontrollers reacted.
    pub after: BeSnapshot,
}

impl AuditRecord {
    /// Renders the record as a JSON object. `replica` tags which engine
    /// it came from in cluster exports.
    pub fn to_value(&self, replica: usize) -> Value {
        let mut pairs: Vec<(String, Value)> = vec![
            ("type".into(), Value::String("audit".into())),
            ("replica".into(), Value::UInt(replica as u64)),
            ("t_s".into(), Value::Float(self.t_s)),
            ("machine".into(), Value::UInt(self.machine as u64)),
            ("pod".into(), Value::String(self.pod.clone())),
            ("action".into(), Value::String(self.action.name().into())),
            ("trigger".into(), Value::String(self.trigger.name().into())),
            ("load".into(), Value::Float(self.load)),
            ("loadlimit".into(), Value::Float(self.loadlimit)),
            ("slack".into(), Value::Float(self.slack)),
            ("slacklimit".into(), Value::Float(self.slacklimit)),
            ("tail_ms".into(), Value::Float(self.tail_ms)),
            ("sla_ms".into(), Value::Float(self.sla_ms)),
        ];
        match self.hot_pod {
            Some(idx) => {
                pairs.push(("hot_pod".into(), Value::UInt(idx as u64)));
                pairs.push((
                    "hot_pod_name".into(),
                    Value::String(self.hot_pod_name.clone()),
                ));
                pairs.push(("hot_pod_ms".into(), Value::Float(self.hot_pod_ms)));
            }
            None => pairs.push(("hot_pod".into(), Value::Null)),
        }
        pairs.push(("before".into(), self.before.to_value()));
        pairs.push(("after".into(), self.after.to_value()));
        Value::Object(pairs)
    }

    /// One human-readable "why did Rhythm do X at t=Y" line.
    pub fn why(&self) -> String {
        let mut line = format!(
            "t={:.1}s machine {} ({}): {} because {}; tail {:.2}ms vs SLA {:.0}ms",
            self.t_s,
            self.machine,
            self.pod,
            self.action.name(),
            self.trigger
                .explain(self.load, self.slack, self.loadlimit, self.slacklimit),
            self.tail_ms,
            self.sla_ms,
        );
        if let Some(idx) = self.hot_pod {
            line.push_str(&format!(
                "; hottest stage {} ({}) mean sojourn {:.2}ms",
                idx, self.hot_pod_name, self.hot_pod_ms
            ));
        }
        line.push_str(&format!(
            "; BE {}→{} instances ({}→{} running, {}→{} cores)",
            self.before.instances,
            self.after.instances,
            self.before.running,
            self.after.running,
            self.before.cores,
            self.after.cores,
        ));
        line
    }
}

impl rhythm_snapshot::Snapshot for AuditRecord {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.f64(self.t_s);
        w.u32(self.machine);
        w.str(&self.pod);
        self.action.encode(w);
        self.trigger.encode(w);
        w.f64(self.load);
        w.f64(self.loadlimit);
        w.f64(self.slack);
        w.f64(self.slacklimit);
        w.f64(self.tail_ms);
        w.f64(self.sla_ms);
        self.hot_pod.encode(w);
        w.str(&self.hot_pod_name);
        w.f64(self.hot_pod_ms);
        self.before.encode(w);
        self.after.encode(w);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(AuditRecord {
            t_s: r.f64()?,
            machine: r.u32()?,
            pod: r.str()?,
            action: rhythm_snapshot::Snapshot::decode(r)?,
            trigger: rhythm_snapshot::Snapshot::decode(r)?,
            load: r.f64()?,
            loadlimit: r.f64()?,
            slack: r.f64()?,
            slacklimit: r.f64()?,
            tail_ms: r.f64()?,
            sla_ms: r.f64()?,
            hot_pod: rhythm_snapshot::Snapshot::decode(r)?,
            hot_pod_name: r.str()?,
            hot_pod_ms: r.f64()?,
            before: rhythm_snapshot::Snapshot::decode(r)?,
            after: rhythm_snapshot::Snapshot::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_full_record() {
        use rhythm_snapshot::{Reader, Snapshot, Writer};
        let rec = sample();
        let mut w = Writer::new();
        rec.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = AuditRecord::decode(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back.pod, rec.pod);
        assert_eq!(back.action, rec.action);
        assert_eq!(back.trigger, rec.trigger);
        assert_eq!(back.hot_pod, rec.hot_pod);
        assert_eq!(back.before, rec.before);
        assert_eq!(back.after, rec.after);
        assert_eq!(back.why(), rec.why());
        // Re-encoding the decoded record is bit-identical.
        let mut w2 = Writer::new();
        back.encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn classify_mirrors_algorithm_2_ladder() {
        let (ll, sl) = (0.6, 0.1);
        assert_eq!(Trigger::classify(0.3, -0.01, ll, sl), Trigger::SlaViolated);
        assert_eq!(Trigger::classify(0.7, 0.2, ll, sl), Trigger::LoadAboveLimit);
        assert_eq!(
            Trigger::classify(0.3, 0.04, ll, sl),
            Trigger::SlackBelowHalfLimit
        );
        assert_eq!(
            Trigger::classify(0.3, 0.08, ll, sl),
            Trigger::SlackBelowLimit
        );
        assert_eq!(
            Trigger::classify(0.3, 0.5, ll, sl),
            Trigger::ComfortableSlack
        );
        // SLA violation wins even under heavy load, as in the paper.
        assert_eq!(Trigger::classify(0.9, -0.5, ll, sl), Trigger::SlaViolated);
    }

    fn sample() -> AuditRecord {
        AuditRecord {
            t_s: 12.0,
            machine: 2,
            pod: "front".into(),
            action: ActionCode::CutBe,
            trigger: Trigger::SlackBelowHalfLimit,
            load: 0.41,
            loadlimit: 0.6,
            slack: 0.03,
            slacklimit: 0.1,
            tail_ms: 97.0,
            sla_ms: 100.0,
            hot_pod: Some(1),
            hot_pod_name: "search".into(),
            hot_pod_ms: 8.4,
            before: BeSnapshot {
                instances: 6,
                running: 6,
                cores: 8,
                llc_ways: 6,
                freq_mhz: 2600,
                net_mbps: 4000,
            },
            after: BeSnapshot {
                instances: 6,
                running: 6,
                cores: 6,
                llc_ways: 4,
                freq_mhz: 2200,
                net_mbps: 3000,
            },
        }
    }

    #[test]
    fn why_line_names_action_and_cause() {
        let why = sample().why();
        assert!(why.contains("CutBE"), "{why}");
        assert!(why.contains("slacklimit/2"), "{why}");
        assert!(why.contains("hottest stage 1 (search)"), "{why}");
        assert!(why.contains("8→6 cores"), "{why}");
    }

    #[test]
    fn json_includes_thresholds_and_snapshots() {
        let s = serde_json::to_string(&sample().to_value(0)).unwrap();
        assert!(s.contains("\"type\":\"audit\""), "{s}");
        assert!(s.contains("\"loadlimit\":0.6"), "{s}");
        assert!(s.contains("\"trigger\":\"slack_below_half_limit\""), "{s}");
        assert!(s.contains("\"before\":{\"instances\":6"), "{s}");
    }

    #[test]
    fn missing_hot_pod_serialises_as_null() {
        let mut r = sample();
        r.hot_pod = None;
        let s = serde_json::to_string(&r.to_value(0)).unwrap();
        assert!(s.contains("\"hot_pod\":null"), "{s}");
        assert!(!s.contains("hot_pod_name"), "{s}");
    }
}
