//! Cluster-scheduler events: gang lifecycle and deadline outcomes.
//!
//! The per-engine recorder sees only one replica; decisions the cluster
//! dispatcher takes at the epoch barrier — forming or aborting a gang,
//! observing a deadline miss — span machines and have no per-engine home.
//! They are recorded here, always single-threaded at the barrier in fixed
//! order, so the export stays byte-identical for any worker-thread count.

use serde::{Deserialize, Serialize};
use serde_json::Value;

/// What happened at the cluster scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterEventKind {
    /// Every instance of a gang job was admitted; the gang is running.
    GangFormed,
    /// A gang was rolled back (a member was killed, or placement timed
    /// out) and its leader requeued.
    GangAborted,
    /// A job completed after its deadline, or the run ended with the
    /// deadline already passed.
    DeadlineMiss,
    /// A job queued in one scheduler shard was placed on a machine of
    /// another shard at the epoch barrier (cross-shard work stealing).
    ShardSteal,
    /// A machine left the cluster (fault injection): its BE work was
    /// killed and requeued. For machine events the `job` field carries
    /// the **global machine index**, not a job id.
    MachineDown,
    /// A crashed machine rejoined the cluster and is again eligible for
    /// BE placement. `job` carries the global machine index.
    MachineUp,
    /// A fault-plan event fired at this barrier (one record per plan
    /// entry, in addition to any per-machine down/up records). `job`
    /// carries the plan-event index.
    FaultInjected,
}

impl ClusterEventKind {
    /// Snake-case name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            ClusterEventKind::GangFormed => "gang_formed",
            ClusterEventKind::GangAborted => "gang_aborted",
            ClusterEventKind::DeadlineMiss => "deadline_miss",
            ClusterEventKind::ShardSteal => "shard_steal",
            ClusterEventKind::MachineDown => "machine_down",
            ClusterEventKind::MachineUp => "machine_up",
            ClusterEventKind::FaultInjected => "fault_injected",
        }
    }
}

/// One cluster-scheduler event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterEvent {
    /// Virtual time of the epoch barrier that recorded the event.
    pub t_s: f64,
    /// What happened.
    pub kind: ClusterEventKind,
    /// The job involved (a gang's leader for gang events).
    pub job: u64,
    /// Gang id for gang events (`None` for solitary jobs).
    pub gang: Option<u32>,
    /// Scheduler shard that recorded the event (`None` when the runner
    /// is unsharded). For steals this is the *destination* shard — the
    /// shard whose machine absorbed the job.
    pub shard: Option<u32>,
}

impl ClusterEvent {
    /// Renders the event as one JSONL object.
    pub fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = vec![
            ("type".into(), Value::String("cluster_event".into())),
            ("kind".into(), Value::String(self.kind.name().into())),
            ("t_s".into(), Value::Float(self.t_s)),
            ("job".into(), Value::UInt(self.job)),
        ];
        if let Some(gid) = self.gang {
            pairs.push(("gang".into(), Value::UInt(gid as u64)));
        }
        if let Some(shard) = self.shard {
            pairs.push(("shard".into(), Value::UInt(shard as u64)));
        }
        Value::Object(pairs)
    }
}

impl rhythm_snapshot::Snapshot for ClusterEventKind {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u8(match self {
            ClusterEventKind::GangFormed => 0,
            ClusterEventKind::GangAborted => 1,
            ClusterEventKind::DeadlineMiss => 2,
            ClusterEventKind::ShardSteal => 3,
            ClusterEventKind::MachineDown => 4,
            ClusterEventKind::MachineUp => 5,
            ClusterEventKind::FaultInjected => 6,
        });
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(match r.u8()? {
            0 => ClusterEventKind::GangFormed,
            1 => ClusterEventKind::GangAborted,
            2 => ClusterEventKind::DeadlineMiss,
            3 => ClusterEventKind::ShardSteal,
            4 => ClusterEventKind::MachineDown,
            5 => ClusterEventKind::MachineUp,
            6 => ClusterEventKind::FaultInjected,
            t => {
                return Err(rhythm_snapshot::SnapshotError::Corrupt(format!(
                    "unknown cluster event kind {t}"
                )))
            }
        })
    }
}

impl rhythm_snapshot::Snapshot for ClusterEvent {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.f64(self.t_s);
        self.kind.encode(w);
        w.u64(self.job);
        self.gang.encode(w);
        self.shard.encode(w);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(ClusterEvent {
            t_s: r.f64()?,
            kind: rhythm_snapshot::Snapshot::decode(r)?,
            job: r.u64()?,
            gang: rhythm_snapshot::Snapshot::decode(r)?,
            shard: rhythm_snapshot::Snapshot::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_cluster_events() {
        use rhythm_snapshot::{Reader, Snapshot, Writer};
        let events = vec![
            ClusterEvent {
                t_s: 12.0,
                kind: ClusterEventKind::GangFormed,
                job: 7,
                gang: Some(3),
                shard: Some(2),
            },
            ClusterEvent {
                t_s: 30.0,
                kind: ClusterEventKind::DeadlineMiss,
                job: 9,
                gang: None,
                shard: None,
            },
            ClusterEvent {
                t_s: 42.0,
                kind: ClusterEventKind::MachineDown,
                job: 5, // machine index for machine events
                gang: None,
                shard: Some(1),
            },
            ClusterEvent {
                t_s: 60.0,
                kind: ClusterEventKind::MachineUp,
                job: 5,
                gang: None,
                shard: Some(1),
            },
            ClusterEvent {
                t_s: 42.0,
                kind: ClusterEventKind::FaultInjected,
                job: 0, // plan-event index for fault records
                gang: None,
                shard: None,
            },
        ];
        let mut w = Writer::new();
        events.encode(&mut w);
        let bytes = w.into_bytes();
        let back: Vec<ClusterEvent> =
            rhythm_snapshot::Snapshot::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn renders_compact_jsonl_object() {
        let ev = ClusterEvent {
            t_s: 12.0,
            kind: ClusterEventKind::GangFormed,
            job: 7,
            gang: Some(3),
            shard: Some(2),
        };
        let line = ev.to_value().to_json_string();
        assert!(line.starts_with("{\"type\":\"cluster_event\""), "{line}");
        assert!(line.contains("\"kind\":\"gang_formed\""), "{line}");
        assert!(line.contains("\"gang\":3"), "{line}");
        assert!(line.contains("\"shard\":2"), "{line}");
        let solo = ClusterEvent {
            t_s: 30.0,
            kind: ClusterEventKind::DeadlineMiss,
            job: 9,
            gang: None,
            shard: None,
        };
        let line = solo.to_value().to_json_string();
        assert!(!line.contains("gang"), "no gang key");
        assert!(!line.contains("shard"), "no shard key");
    }
}
