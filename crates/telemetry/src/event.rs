//! The compact event vocabulary of the flight recorder.
//!
//! Events are `Copy` and fixed-size (16 bytes) so the ring buffer can
//! hold them inline with no per-record heap traffic; anything that needs
//! a string (pod names, workload names) is resolved at export time from
//! the index tables carried by [`crate::TelemetryOutput`].

use serde_json::Value;

/// One recorded event: a virtual timestamp plus the payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Virtual time in nanoseconds.
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The controller decision, mirrored from `rhythm-controller`'s
/// `BeAction` by its severity code so this crate stays a leaf
/// dependency. Ordering matches `BeAction::severity`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ActionCode {
    /// Subcontrollers may add BE jobs and grow their resources.
    AllowBeGrowth,
    /// Freeze the BE population.
    DisallowBeGrowth,
    /// Reduce part of the BE resources.
    CutBe,
    /// Pause all running BE jobs.
    SuspendBe,
    /// Kill all BE jobs (the SLA is already violated).
    StopBe,
}

impl ActionCode {
    /// Maps a `BeAction::severity()` code (0..=4) back to the action.
    ///
    /// # Panics
    ///
    /// Panics on codes above 4.
    pub fn from_severity(code: u8) -> ActionCode {
        match code {
            0 => ActionCode::AllowBeGrowth,
            1 => ActionCode::DisallowBeGrowth,
            2 => ActionCode::CutBe,
            3 => ActionCode::SuspendBe,
            4 => ActionCode::StopBe,
            other => panic!("unknown action severity {other}"),
        }
    }

    /// The severity code (matches `BeAction::severity`).
    pub fn severity(self) -> u8 {
        match self {
            ActionCode::AllowBeGrowth => 0,
            ActionCode::DisallowBeGrowth => 1,
            ActionCode::CutBe => 2,
            ActionCode::SuspendBe => 3,
            ActionCode::StopBe => 4,
        }
    }

    /// The paper's name for the action.
    pub fn name(self) -> &'static str {
        match self {
            ActionCode::AllowBeGrowth => "AllowBEGrowth",
            ActionCode::DisallowBeGrowth => "DisallowBEGrowth",
            ActionCode::CutBe => "CutBE",
            ActionCode::SuspendBe => "SuspendBE",
            ActionCode::StopBe => "StopBE",
        }
    }
}

/// Which resource dimension a subcontroller adjusted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdjustKind {
    /// Live BE instance count changed (admission / kill / resume).
    BeInstances,
    /// Total BE cores changed (CPU subcontroller).
    BeCores,
    /// BE LLC ways changed (CAT subcontroller).
    BeLlcWays,
    /// BE frequency point changed, in MHz (power subcontroller).
    BeFreqMhz,
    /// BE bandwidth ceiling changed, in Mbit/s (network subcontroller).
    BeNetMbps,
}

impl AdjustKind {
    /// Snake-case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            AdjustKind::BeInstances => "be_instances",
            AdjustKind::BeCores => "be_cores",
            AdjustKind::BeLlcWays => "be_llc_ways",
            AdjustKind::BeFreqMhz => "be_freq_mhz",
            AdjustKind::BeNetMbps => "be_net_mbps",
        }
    }
}

/// The event payload. Fields are packed small on purpose: per-mille
/// load/slack and microsecond latencies keep every variant in 8 bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A request entered the service.
    RequestAdmitted,
    /// A request completed end-to-end.
    RequestCompleted {
        /// End-to-end latency in microseconds (saturating).
        latency_us: u32,
    },
    /// A BE instance was admitted on a machine.
    BeAdmitted {
        /// Machine (Servpod) index within the engine.
        machine: u16,
        /// Machine-local instance id.
        instance: u32,
    },
    /// A BE instance was killed by StopBE.
    BeKilled {
        /// Machine (Servpod) index within the engine.
        machine: u16,
        /// Machine-local instance id.
        instance: u32,
        /// Progress at kill time, in percent of one job (saturating).
        progress_pct: u8,
    },
    /// The controller took an action.
    Action {
        /// Machine (Servpod) index within the engine.
        machine: u16,
        /// The decision.
        action: ActionCode,
        /// Measured load fraction in per-mille (saturating).
        load_pm: u16,
        /// Measured slack in per-mille (saturating).
        slack_pm: i16,
    },
    /// A subcontroller moved a resource dimension.
    Adjust {
        /// Machine (Servpod) index within the engine.
        machine: u16,
        /// Which dimension.
        kind: AdjustKind,
        /// The new value of that dimension.
        value: i32,
    },
    /// A cluster epoch barrier was crossed.
    Epoch {
        /// Zero-based epoch index.
        epoch: u32,
    },
}

// The flight-recorder ring stores events inline (64 Ki × 16 bytes =
// 1 MiB); a growing payload would silently double its memory footprint
// and evict half the history. Every `Copy` type that can sit in a ring
// slot is size-pinned at compile time — a new variant that breaks the
// contract fails the build here, not in a test run.
const _: () = assert!(std::mem::size_of::<Event>() <= 16);
const _: () = assert!(std::mem::size_of::<EventKind>() <= 8);
const _: () = assert!(std::mem::size_of::<ActionCode>() == 1);
const _: () = assert!(std::mem::size_of::<AdjustKind>() == 1);

impl EventKind {
    /// Snake-case discriminant used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::RequestAdmitted => "request_admitted",
            EventKind::RequestCompleted { .. } => "request_completed",
            EventKind::BeAdmitted { .. } => "be_admitted",
            EventKind::BeKilled { .. } => "be_killed",
            EventKind::Action { .. } => "action",
            EventKind::Adjust { .. } => "adjust",
            EventKind::Epoch { .. } => "epoch",
        }
    }
}

impl rhythm_snapshot::Snapshot for ActionCode {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u8(self.severity());
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        let code = r.u8()?;
        if code > 4 {
            return Err(rhythm_snapshot::SnapshotError::Corrupt(format!(
                "unknown action severity {code}"
            )));
        }
        Ok(ActionCode::from_severity(code))
    }
}

impl rhythm_snapshot::Snapshot for AdjustKind {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u8(match self {
            AdjustKind::BeInstances => 0,
            AdjustKind::BeCores => 1,
            AdjustKind::BeLlcWays => 2,
            AdjustKind::BeFreqMhz => 3,
            AdjustKind::BeNetMbps => 4,
        });
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(match r.u8()? {
            0 => AdjustKind::BeInstances,
            1 => AdjustKind::BeCores,
            2 => AdjustKind::BeLlcWays,
            3 => AdjustKind::BeFreqMhz,
            4 => AdjustKind::BeNetMbps,
            t => {
                return Err(rhythm_snapshot::SnapshotError::Corrupt(format!(
                    "unknown adjust kind {t}"
                )))
            }
        })
    }
}

impl rhythm_snapshot::Snapshot for EventKind {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        match *self {
            EventKind::RequestAdmitted => w.u8(0),
            EventKind::RequestCompleted { latency_us } => {
                w.u8(1);
                w.u32(latency_us);
            }
            EventKind::BeAdmitted { machine, instance } => {
                w.u8(2);
                w.u16(machine);
                w.u32(instance);
            }
            EventKind::BeKilled {
                machine,
                instance,
                progress_pct,
            } => {
                w.u8(3);
                w.u16(machine);
                w.u32(instance);
                w.u8(progress_pct);
            }
            EventKind::Action {
                machine,
                action,
                load_pm,
                slack_pm,
            } => {
                w.u8(4);
                w.u16(machine);
                action.encode(w);
                w.u16(load_pm);
                w.i16(slack_pm);
            }
            EventKind::Adjust {
                machine,
                kind,
                value,
            } => {
                w.u8(5);
                w.u16(machine);
                kind.encode(w);
                w.i32(value);
            }
            EventKind::Epoch { epoch } => {
                w.u8(6);
                w.u32(epoch);
            }
        }
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(match r.u8()? {
            0 => EventKind::RequestAdmitted,
            1 => EventKind::RequestCompleted {
                latency_us: r.u32()?,
            },
            2 => EventKind::BeAdmitted {
                machine: r.u16()?,
                instance: r.u32()?,
            },
            3 => EventKind::BeKilled {
                machine: r.u16()?,
                instance: r.u32()?,
                progress_pct: r.u8()?,
            },
            4 => EventKind::Action {
                machine: r.u16()?,
                action: rhythm_snapshot::Snapshot::decode(r)?,
                load_pm: r.u16()?,
                slack_pm: r.i16()?,
            },
            5 => EventKind::Adjust {
                machine: r.u16()?,
                kind: rhythm_snapshot::Snapshot::decode(r)?,
                value: r.i32()?,
            },
            6 => EventKind::Epoch { epoch: r.u32()? },
            t => {
                return Err(rhythm_snapshot::SnapshotError::Corrupt(format!(
                    "unknown event kind tag {t}"
                )))
            }
        })
    }
}

impl rhythm_snapshot::Snapshot for Event {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.u64(self.t_ns);
        self.kind.encode(w);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(Event {
            t_ns: r.u64()?,
            kind: rhythm_snapshot::Snapshot::decode(r)?,
        })
    }
}

/// Saturating per-mille encoding of a fraction (used by the Action
/// event).
pub fn per_mille_u16(x: f64) -> u16 {
    (x * 1000.0).clamp(0.0, u16::MAX as f64) as u16
}

/// Saturating signed per-mille encoding (slack can be negative).
pub fn per_mille_i16(x: f64) -> i16 {
    (x * 1000.0).clamp(i16::MIN as f64, i16::MAX as f64) as i16
}

impl Event {
    /// Renders the event as a JSON object. `replica` tags which engine
    /// the event came from in cluster exports.
    pub fn to_value(&self, replica: usize) -> Value {
        let mut pairs: Vec<(String, Value)> = vec![
            ("type".into(), Value::String("event".into())),
            ("replica".into(), Value::UInt(replica as u64)),
            ("t_ns".into(), Value::UInt(self.t_ns)),
            ("kind".into(), Value::String(self.kind.name().into())),
        ];
        match self.kind {
            EventKind::RequestAdmitted => {}
            EventKind::RequestCompleted { latency_us } => {
                pairs.push(("latency_us".into(), Value::UInt(latency_us as u64)));
            }
            EventKind::BeAdmitted { machine, instance } => {
                pairs.push(("machine".into(), Value::UInt(machine as u64)));
                pairs.push(("instance".into(), Value::UInt(instance as u64)));
            }
            EventKind::BeKilled {
                machine,
                instance,
                progress_pct,
            } => {
                pairs.push(("machine".into(), Value::UInt(machine as u64)));
                pairs.push(("instance".into(), Value::UInt(instance as u64)));
                pairs.push(("progress_pct".into(), Value::UInt(progress_pct as u64)));
            }
            EventKind::Action {
                machine,
                action,
                load_pm,
                slack_pm,
            } => {
                pairs.push(("machine".into(), Value::UInt(machine as u64)));
                pairs.push(("action".into(), Value::String(action.name().into())));
                pairs.push(("load_pm".into(), Value::UInt(load_pm as u64)));
                pairs.push(("slack_pm".into(), Value::Int(slack_pm as i64)));
            }
            EventKind::Adjust {
                machine,
                kind,
                value,
            } => {
                pairs.push(("machine".into(), Value::UInt(machine as u64)));
                pairs.push(("dimension".into(), Value::String(kind.name().into())));
                pairs.push(("value".into(), Value::Int(value as i64)));
            }
            EventKind::Epoch { epoch } => {
                pairs.push(("epoch".into(), Value::UInt(epoch as u64)));
            }
        }
        Value::Object(pairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The `size_of::<Event>() <= 16` contract is a compile-time
    // `const _: () = assert!(...)` next to the type definitions above;
    // it needs no runtime test.

    #[test]
    fn action_code_round_trips_severity() {
        for code in 0u8..=4 {
            assert_eq!(ActionCode::from_severity(code).severity(), code);
        }
    }

    #[test]
    fn per_mille_saturates() {
        assert_eq!(per_mille_u16(0.5), 500);
        assert_eq!(per_mille_u16(-1.0), 0);
        assert_eq!(per_mille_u16(1e9), u16::MAX);
        assert_eq!(per_mille_i16(-0.25), -250);
        assert_eq!(per_mille_i16(-1e9), i16::MIN);
    }

    #[test]
    fn snapshot_round_trips_every_variant() {
        use rhythm_snapshot::{Reader, Snapshot, Writer};
        let events = [
            Event {
                t_ns: 1,
                kind: EventKind::RequestAdmitted,
            },
            Event {
                t_ns: 2,
                kind: EventKind::RequestCompleted { latency_us: 900 },
            },
            Event {
                t_ns: 3,
                kind: EventKind::BeAdmitted {
                    machine: 4,
                    instance: 17,
                },
            },
            Event {
                t_ns: 4,
                kind: EventKind::BeKilled {
                    machine: 1,
                    instance: 2,
                    progress_pct: 63,
                },
            },
            Event {
                t_ns: 5,
                kind: EventKind::Action {
                    machine: 0,
                    action: ActionCode::SuspendBe,
                    load_pm: 710,
                    slack_pm: -40,
                },
            },
            Event {
                t_ns: 6,
                kind: EventKind::Adjust {
                    machine: 2,
                    kind: AdjustKind::BeFreqMhz,
                    value: -100,
                },
            },
            Event {
                t_ns: 7,
                kind: EventKind::Epoch { epoch: 12 },
            },
        ];
        let mut w = Writer::new();
        for ev in &events {
            ev.encode(&mut w);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for ev in &events {
            assert_eq!(Event::decode(&mut r).unwrap(), *ev);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn snapshot_rejects_unknown_tags() {
        use rhythm_snapshot::{Reader, Snapshot, SnapshotError};
        let bytes = [9u8; 9]; // t_ns then tag 9
        let decoded = Event::decode(&mut Reader::new(&bytes));
        assert!(matches!(decoded.err(), Some(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn event_json_carries_payload() {
        let ev = Event {
            t_ns: 2_000_000_000,
            kind: EventKind::Action {
                machine: 3,
                action: ActionCode::CutBe,
                load_pm: 640,
                slack_pm: 31,
            },
        };
        let s = serde_json::to_string(&ev.to_value(1)).unwrap();
        assert!(s.contains("\"kind\":\"action\""), "{s}");
        assert!(s.contains("\"action\":\"CutBE\""), "{s}");
        assert!(s.contains("\"replica\":1"), "{s}");
    }
}
