//! Deterministic exporters over collected telemetry: JSONL, a
//! human-readable why-report, and Chrome-trace JSON for
//! `chrome://tracing` / Perfetto.
//!
//! Determinism contract: exports are plain functions of the collected
//! data; replicas are always iterated in index order and objects are
//! built with fixed key order, so two runs that collected identical
//! telemetry (e.g. the same cluster run at different worker-thread
//! counts) render byte-identical text.

use crate::audit::AuditRecord;
use crate::event::{Event, EventKind};
use crate::tail::TailPoint;
use serde_json::Value;

/// Everything one engine collected during a run.
#[derive(Clone, Debug, Default)]
pub struct TelemetryOutput {
    /// Servpod names by machine index (resolves `machine` fields in
    /// events and audit records).
    pub pods: Vec<String>,
    /// Flight-recorder contents, oldest first.
    pub events: Vec<Event>,
    /// Total events ever recorded (including ones evicted from the ring).
    pub recorded: u64,
    /// Events evicted because the ring was full.
    pub dropped: u64,
    /// The decision audit trail, in tick order.
    pub audit: Vec<AuditRecord>,
    /// The per-engine tail series, one point per controller period.
    pub tail: Vec<TailPoint>,
}

impl TelemetryOutput {
    /// The human-readable "why did Rhythm do X at t=Y" report: one line
    /// per audit record, in tick order.
    pub fn why_report(&self) -> String {
        let mut out = String::new();
        for rec in &self.audit {
            out.push_str(&rec.why());
            out.push('\n');
        }
        out
    }
}

/// Renders telemetry as JSON Lines: one compact object per line.
///
/// Line order is fixed — a `meta` header, then per-replica events, audit
/// records and tail points (replicas in index order), then the merged
/// cluster tail series — so the export is byte-identical whenever the
/// collected data is identical.
pub fn export_jsonl(replicas: &[TelemetryOutput], cluster_tail: &[TailPoint]) -> String {
    export_jsonl_with_events(replicas, cluster_tail, &[])
}

/// [`export_jsonl`] plus cluster-scheduler events (gang lifecycle,
/// deadline misses), appended after the merged cluster tail so exports
/// without events are byte-identical to the plain form.
pub fn export_jsonl_with_events(
    replicas: &[TelemetryOutput],
    cluster_tail: &[TailPoint],
    cluster_events: &[crate::cluster::ClusterEvent],
) -> String {
    let mut out = String::new();
    let mut push = |v: Value| {
        out.push_str(&v.to_json_string());
        out.push('\n');
    };

    let recorded: u64 = replicas.iter().map(|r| r.recorded).sum();
    let dropped: u64 = replicas.iter().map(|r| r.dropped).sum();
    push(Value::Object(vec![
        ("type".into(), Value::String("meta".into())),
        ("schema".into(), Value::String("rhythm-trace/v1".into())),
        ("replicas".into(), Value::UInt(replicas.len() as u64)),
        ("events_recorded".into(), Value::UInt(recorded)),
        ("events_dropped".into(), Value::UInt(dropped)),
    ]));

    for (idx, rep) in replicas.iter().enumerate() {
        for ev in &rep.events {
            push(ev.to_value(idx));
        }
        for rec in &rep.audit {
            push(rec.to_value(idx));
        }
        for pt in &rep.tail {
            push(pt.to_value("replica", Some(idx)));
        }
    }
    for pt in cluster_tail {
        push(pt.to_value("cluster", None));
    }
    for ev in cluster_events {
        push(ev.to_value());
    }
    out
}

/// Converts one event into a Chrome-trace entry, or `None` for kinds too
/// frequent to chart individually (per-request events).
fn chrome_event(ev: &Event, replica: usize) -> Option<Value> {
    let ts_us = ev.t_ns as f64 / 1000.0;
    let instant = |name: String, machine: u16, args: Vec<(String, Value)>| {
        Value::Object(vec![
            ("name".into(), Value::String(name)),
            ("ph".into(), Value::String("i".into())),
            ("s".into(), Value::String("t".into())),
            ("ts".into(), Value::Float(ts_us)),
            ("pid".into(), Value::UInt(replica as u64)),
            ("tid".into(), Value::UInt(machine as u64)),
            ("args".into(), Value::Object(args)),
        ])
    };
    match ev.kind {
        // Per-request events would swamp the viewer; the tail counters
        // already summarise them.
        EventKind::RequestAdmitted | EventKind::RequestCompleted { .. } => None,
        EventKind::BeAdmitted { machine, instance } => Some(instant(
            "be_admitted".into(),
            machine,
            vec![("instance".into(), Value::UInt(instance as u64))],
        )),
        EventKind::BeKilled {
            machine,
            instance,
            progress_pct,
        } => Some(instant(
            "be_killed".into(),
            machine,
            vec![
                ("instance".into(), Value::UInt(instance as u64)),
                ("progress_pct".into(), Value::UInt(progress_pct as u64)),
            ],
        )),
        EventKind::Action {
            machine,
            action,
            load_pm,
            slack_pm,
        } => Some(instant(
            action.name().into(),
            machine,
            vec![
                ("load".into(), Value::Float(load_pm as f64 / 1000.0)),
                ("slack".into(), Value::Float(slack_pm as f64 / 1000.0)),
            ],
        )),
        EventKind::Adjust {
            machine,
            kind,
            value,
        } => Some(instant(
            kind.name().into(),
            machine,
            vec![("value".into(), Value::Int(value as i64))],
        )),
        EventKind::Epoch { epoch } => Some(instant(
            "epoch".into(),
            0,
            vec![("epoch".into(), Value::UInt(epoch as u64))],
        )),
    }
}

/// Renders telemetry as Chrome-trace JSON (`chrome://tracing` /
/// Perfetto "JSON array format"): controller actions, subcontroller
/// adjustments and BE lifecycle as instant events, per-replica tail
/// series as counter tracks.
pub fn chrome_trace(replicas: &[TelemetryOutput]) -> String {
    let mut entries: Vec<Value> = Vec::new();
    for (idx, rep) in replicas.iter().enumerate() {
        entries.push(Value::Object(vec![
            ("name".into(), Value::String("process_name".into())),
            ("ph".into(), Value::String("M".into())),
            ("pid".into(), Value::UInt(idx as u64)),
            (
                "args".into(),
                Value::Object(vec![(
                    "name".into(),
                    Value::String(format!("replica {idx}")),
                )]),
            ),
        ]));
        for ev in &rep.events {
            if let Some(v) = chrome_event(ev, idx) {
                entries.push(v);
            }
        }
        for pt in &rep.tail {
            entries.push(Value::Object(vec![
                ("name".into(), Value::String("tail_ms".into())),
                ("ph".into(), Value::String("C".into())),
                ("ts".into(), Value::Float(pt.t_s * 1e6)),
                ("pid".into(), Value::UInt(idx as u64)),
                (
                    "args".into(),
                    Value::Object(vec![
                        ("p95".into(), Value::Float(pt.p95_ms)),
                        ("p99".into(), Value::Float(pt.p99_ms)),
                    ]),
                ),
            ]));
            entries.push(Value::Object(vec![
                ("name".into(), Value::String("slack".into())),
                ("ph".into(), Value::String("C".into())),
                ("ts".into(), Value::Float(pt.t_s * 1e6)),
                ("pid".into(), Value::UInt(idx as u64)),
                (
                    "args".into(),
                    Value::Object(vec![("slack".into(), Value::Float(pt.slack))]),
                ),
            ]));
        }
    }
    let doc = Value::Object(vec![
        ("traceEvents".into(), Value::Array(entries)),
        ("displayTimeUnit".into(), Value::String("ms".into())),
    ]);
    doc.to_json_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::{BeSnapshot, Trigger};
    use crate::event::ActionCode;

    fn sample_output() -> TelemetryOutput {
        TelemetryOutput {
            pods: vec!["front".into(), "search".into()],
            events: vec![
                Event {
                    t_ns: 2_000_000_000,
                    kind: EventKind::Action {
                        machine: 0,
                        action: ActionCode::SuspendBe,
                        load_pm: 710,
                        slack_pm: 120,
                    },
                },
                Event {
                    t_ns: 2_000_000_000,
                    kind: EventKind::RequestAdmitted,
                },
                Event {
                    t_ns: 4_000_000_000,
                    kind: EventKind::Epoch { epoch: 1 },
                },
            ],
            recorded: 3,
            dropped: 0,
            audit: vec![AuditRecord {
                t_s: 2.0,
                machine: 0,
                pod: "front".into(),
                action: ActionCode::SuspendBe,
                trigger: Trigger::LoadAboveLimit,
                load: 0.71,
                loadlimit: 0.6,
                slack: 0.12,
                slacklimit: 0.1,
                tail_ms: 88.0,
                sla_ms: 100.0,
                hot_pod: None,
                hot_pod_name: String::new(),
                hot_pod_ms: 0.0,
                before: BeSnapshot::default(),
                after: BeSnapshot::default(),
            }],
            tail: vec![TailPoint {
                t_s: 2.0,
                count: 40,
                p50_ms: 10.0,
                p95_ms: 60.0,
                p99_ms: 88.0,
                slack: 0.12,
            }],
        }
    }

    #[test]
    fn jsonl_has_meta_then_lines() {
        let out = sample_output();
        let cluster = vec![out.tail[0]];
        let text = export_jsonl(&[out], &cluster);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + 3 + 1 + 1 + 1);
        assert!(lines[0].starts_with("{\"type\":\"meta\""), "{}", lines[0]);
        assert!(lines[1].contains("\"kind\":\"action\""), "{}", lines[1]);
        let last = lines.last().unwrap();
        assert!(last.contains("\"scope\":\"cluster\""), "{last}");
        // Every line is a complete object.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "{l}");
        }
    }

    #[test]
    fn jsonl_is_deterministic() {
        let a = export_jsonl(&[sample_output()], &[]);
        let b = export_jsonl(&[sample_output()], &[]);
        assert_eq!(a, b);
    }

    #[test]
    fn why_report_one_line_per_record() {
        let out = sample_output();
        let report = out.why_report();
        assert_eq!(report.lines().count(), 1);
        assert!(report.contains("SuspendBE"), "{report}");
        assert!(report.contains("loadlimit"), "{report}");
    }

    #[test]
    fn chrome_trace_skips_request_noise_and_keeps_actions() {
        let text = chrome_trace(&[sample_output()]);
        assert!(text.starts_with("{\"traceEvents\":["), "{text}");
        assert!(text.contains("\"name\":\"SuspendBE\""), "{text}");
        assert!(text.contains("\"ph\":\"C\""), "{text}");
        assert!(text.contains("\"name\":\"epoch\""), "{text}");
        assert!(!text.contains("request_admitted"), "{text}");
        assert!(text.ends_with("\"displayTimeUnit\":\"ms\"}"), "{text}");
    }
}
