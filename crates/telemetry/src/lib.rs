//! Observability for the Rhythm runtime: flight recorder, decision audit
//! trail and streaming tail timelines.
//!
//! Production co-location systems are debugged from logged per-machine
//! timelines (Ren et al.'s Alibaba anomaly study works entirely off such
//! logs); the paper's 2-second decision loop (§3.5, Algorithm 2) is
//! otherwise opaque — when a run shows an SLA violation or a surprising
//! EMU number there is no way to answer *why* an action fired. This crate
//! provides three pieces the engine, controller and cluster layers hook
//! into:
//!
//! * [`recorder`] — a fixed-capacity ring buffer ([`FlightRecorder`]) of
//!   compact, timestamped events ([`Event`]): request admitted/completed,
//!   BE action taken, subcontroller adjustment, BE admission/kill, epoch
//!   boundary. The record path allocates nothing (the ring is
//!   preallocated, events are `Copy`) and a disabled recorder costs one
//!   predictable branch.
//! * [`audit`] — every controller action with its full causal context
//!   ([`AuditRecord`]): measured load vs `loadlimit`, slack vs
//!   `slacklimit`, the triggering condition of Algorithm 2, the hottest
//!   Servpod by mean sojourn, and the BE population before/after.
//!   Renders as JSONL or as a human-readable "why did Rhythm do X at
//!   t=Y" report.
//! * [`tail`] — epoch-aligned p50/p95/p99 + slack series ([`TailSeries`])
//!   built on the [`rhythm_sim::LatencyHistogram`] sketch. Per-engine
//!   windows are merged across cluster worker threads in fixed replica
//!   order at epoch barriers, so exports are byte-identical for any
//!   thread count.
//! * [`export`] — deterministic JSONL and Chrome-trace
//!   (`chrome://tracing`) exporters over the collected
//!   [`TelemetryOutput`]s.
//!
//! Everything is off by default ([`TelemetryConfig::disabled`]); the
//! engine's hot path only ever pays the `enabled` check.
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

pub mod audit;
pub mod cluster;
pub mod event;
pub mod export;
pub mod recorder;
pub mod tail;

/// Layout description of every [`rhythm_snapshot::Snapshot`] impl in this
/// crate. Hashed into snapshot files; **bump the text whenever an encoding
/// here changes shape** so stale snapshots are refused instead of
/// misdecoded.
pub const SNAPSHOT_SCHEMA: &str = "rhythm-telemetry/v1: \
     Event=(t_ns:u64,kind:tagged) EventKind=tag:u8+payload ActionCode=severity:u8 \
     AdjustKind=tag:u8 BeSnapshot=6xu32 Trigger=tag:u8 \
     AuditRecord=(t_s,machine,pod,action,trigger,load,loadlimit,slack,slacklimit,\
     tail_ms,sla_ms,hot_pod:Option<u32>,hot_pod_name,hot_pod_ms,before,after) \
     TailPoint=(t_s:f64,count:u64,p50:f64,p95:f64,p99:f64,slack:f64) \
     TailSeries=(window,last_window,points:[TailPoint]) \
     TelemetryConfig=(enabled:bool,ring_capacity:u64,audit:bool,tail:bool) \
     FlightRecorder=(enabled:bool,cap:u64,seq:u64,buf:[Event] raw slot order) \
     Telemetry=(cfg,recorder,audit:[AuditRecord],tail) \
     ClusterEventKind=tag:u8 ClusterEvent=(t_s:f64,kind,job:u64,gang:Option<u32>,shard:Option<u32>)";

pub use audit::{AuditRecord, BeSnapshot, Trigger};
pub use cluster::{ClusterEvent, ClusterEventKind};
pub use event::{per_mille_i16, per_mille_u16, ActionCode, AdjustKind, Event, EventKind};
pub use export::{chrome_trace, export_jsonl, export_jsonl_with_events, TelemetryOutput};
pub use recorder::{FlightRecorder, Telemetry, TelemetryConfig};
pub use tail::{TailPoint, TailSeries};
