//! Observability for the Rhythm runtime: flight recorder, decision audit
//! trail and streaming tail timelines.
//!
//! Production co-location systems are debugged from logged per-machine
//! timelines (Ren et al.'s Alibaba anomaly study works entirely off such
//! logs); the paper's 2-second decision loop (§3.5, Algorithm 2) is
//! otherwise opaque — when a run shows an SLA violation or a surprising
//! EMU number there is no way to answer *why* an action fired. This crate
//! provides three pieces the engine, controller and cluster layers hook
//! into:
//!
//! * [`recorder`] — a fixed-capacity ring buffer ([`FlightRecorder`]) of
//!   compact, timestamped events ([`Event`]): request admitted/completed,
//!   BE action taken, subcontroller adjustment, BE admission/kill, epoch
//!   boundary. The record path allocates nothing (the ring is
//!   preallocated, events are `Copy`) and a disabled recorder costs one
//!   predictable branch.
//! * [`audit`] — every controller action with its full causal context
//!   ([`AuditRecord`]): measured load vs `loadlimit`, slack vs
//!   `slacklimit`, the triggering condition of Algorithm 2, the hottest
//!   Servpod by mean sojourn, and the BE population before/after.
//!   Renders as JSONL or as a human-readable "why did Rhythm do X at
//!   t=Y" report.
//! * [`tail`] — epoch-aligned p50/p95/p99 + slack series ([`TailSeries`])
//!   built on the [`rhythm_sim::LatencyHistogram`] sketch. Per-engine
//!   windows are merged across cluster worker threads in fixed replica
//!   order at epoch barriers, so exports are byte-identical for any
//!   thread count.
//! * [`export`] — deterministic JSONL and Chrome-trace
//!   (`chrome://tracing`) exporters over the collected
//!   [`TelemetryOutput`]s.
//!
//! Everything is off by default ([`TelemetryConfig::disabled`]); the
//! engine's hot path only ever pays the `enabled` check.
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

pub mod audit;
pub mod cluster;
pub mod event;
pub mod export;
pub mod recorder;
pub mod tail;

pub use audit::{AuditRecord, BeSnapshot, Trigger};
pub use cluster::{ClusterEvent, ClusterEventKind};
pub use event::{per_mille_i16, per_mille_u16, ActionCode, AdjustKind, Event, EventKind};
pub use export::{chrome_trace, export_jsonl, export_jsonl_with_events, TelemetryOutput};
pub use recorder::{FlightRecorder, Telemetry, TelemetryConfig};
pub use tail::{TailPoint, TailSeries};
