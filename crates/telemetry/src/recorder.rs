//! The flight recorder: a fixed-capacity ring of [`Event`]s, plus the
//! [`Telemetry`] bundle the engine embeds.

use crate::audit::AuditRecord;
use crate::event::{Event, EventKind};
use crate::export::TelemetryOutput;
use crate::tail::TailSeries;
use rhythm_sim::SimTime;

/// Default ring capacity: 64 Ki events × 16 bytes = 1 MiB.
pub const DEFAULT_RING_CAPACITY: usize = 64 * 1024;

/// What to collect during a run. Everything defaults to off; the engine
/// hot path then pays exactly one predictable branch per instrumentation
/// point.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Master switch. When false nothing is collected and
    /// `EngineOutput::telemetry` stays `None`.
    pub enabled: bool,
    /// Flight-recorder ring capacity in events (oldest evicted first).
    pub ring_capacity: usize,
    /// Collect the decision audit trail (one record per controller tick
    /// per machine).
    pub audit: bool,
    /// Collect the epoch-aligned tail series (p50/p95/p99 + slack per
    /// controller period).
    pub tail: bool,
}

impl TelemetryConfig {
    /// Everything off (the default).
    pub fn disabled() -> TelemetryConfig {
        TelemetryConfig {
            enabled: false,
            ring_capacity: DEFAULT_RING_CAPACITY,
            audit: false,
            tail: false,
        }
    }

    /// Recorder + audit trail + tail series, default ring capacity.
    pub fn full() -> TelemetryConfig {
        TelemetryConfig {
            enabled: true,
            ring_capacity: DEFAULT_RING_CAPACITY,
            audit: true,
            tail: true,
        }
    }

    /// Flight recorder only (no audit trail, no tail series).
    pub fn events_only() -> TelemetryConfig {
        TelemetryConfig {
            enabled: true,
            ring_capacity: DEFAULT_RING_CAPACITY,
            audit: false,
            tail: false,
        }
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::disabled()
    }
}

/// A fixed-capacity ring buffer of [`Event`]s.
///
/// The buffer is allocated once at construction; recording writes a
/// `Copy` event into a slot and never touches the heap. When the ring is
/// full the oldest event is overwritten (and counted as dropped) — a
/// flight recorder keeps the *recent* past, which is what post-mortems
/// need.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    enabled: bool,
    buf: Vec<Event>,
    cap: usize,
    /// Total events ever recorded (slot of record `k` is `k % cap`).
    seq: u64,
}

impl FlightRecorder {
    /// An enabled recorder holding up to `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(1);
        FlightRecorder {
            enabled: true,
            buf: Vec::with_capacity(cap),
            cap,
            seq: 0,
        }
    }

    /// A recorder that ignores every record call (no allocation).
    pub fn disabled() -> FlightRecorder {
        FlightRecorder {
            enabled: false,
            buf: Vec::new(),
            cap: 1,
            seq: 0,
        }
    }

    /// Builds from a config: enabled iff `cfg.enabled`.
    pub fn from_config(cfg: &TelemetryConfig) -> FlightRecorder {
        if cfg.enabled {
            FlightRecorder::new(cfg.ring_capacity)
        } else {
            FlightRecorder::disabled()
        }
    }

    /// True if record calls are stored.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event. The disabled fast path is a single branch.
    #[inline]
    pub fn record(&mut self, t: SimTime, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let ev = Event {
            t_ns: t.as_nanos(),
            kind,
        };
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            let slot = (self.seq % self.cap as u64) as usize;
            self.buf[slot] = ev;
        }
        self.seq += 1;
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<Event> {
        if self.buf.len() < self.cap {
            return self.buf.clone();
        }
        let split = (self.seq % self.cap as u64) as usize;
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[split..]);
        out.extend_from_slice(&self.buf[..split]);
        out
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.seq
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.seq - self.buf.len() as u64
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

impl rhythm_snapshot::Snapshot for TelemetryConfig {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.bool(self.enabled);
        w.u64(self.ring_capacity as u64);
        w.bool(self.audit);
        w.bool(self.tail);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(TelemetryConfig {
            enabled: r.bool()?,
            ring_capacity: r.u64()? as usize,
            audit: r.bool()?,
            tail: r.bool()?,
        })
    }
}

// The ring is serialised raw (slot order, not age order) together with
// `seq`, so a restored recorder that has already wrapped keeps writing
// into exactly the slot the straight-through run would have used — the
// byte-identity contract survives eviction.
impl rhythm_snapshot::Snapshot for FlightRecorder {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.bool(self.enabled);
        w.u64(self.cap as u64);
        w.u64(self.seq);
        self.buf.encode(w);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        let enabled = r.bool()?;
        let cap = r.u64()? as usize;
        let seq = r.u64()?;
        let buf: Vec<Event> = rhythm_snapshot::Snapshot::decode(r)?;
        if cap == 0 {
            return Err(rhythm_snapshot::SnapshotError::Corrupt(
                "flight recorder capacity is zero".into(),
            ));
        }
        let expected = if enabled { seq.min(cap as u64) as usize } else { 0 };
        if buf.len() != expected {
            return Err(rhythm_snapshot::SnapshotError::Corrupt(format!(
                "flight recorder holds {} events, expected {expected} (cap {cap}, seq {seq})",
                buf.len()
            )));
        }
        let mut buf = buf;
        buf.reserve_exact(cap - buf.len());
        Ok(FlightRecorder {
            enabled,
            buf,
            cap,
            seq,
        })
    }
}

impl rhythm_snapshot::Snapshot for Telemetry {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        self.cfg.encode(w);
        self.recorder.encode(w);
        self.audit.encode(w);
        self.tail.encode(w);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(Telemetry {
            cfg: rhythm_snapshot::Snapshot::decode(r)?,
            recorder: rhythm_snapshot::Snapshot::decode(r)?,
            audit: rhythm_snapshot::Snapshot::decode(r)?,
            tail: rhythm_snapshot::Snapshot::decode(r)?,
        })
    }
}

/// The per-engine telemetry bundle: recorder + audit trail + tail
/// series. The engine owns one and threads it through its event
/// handlers; [`Telemetry::into_output`] freezes it into the run output.
#[derive(Clone, Debug)]
pub struct Telemetry {
    cfg: TelemetryConfig,
    /// The flight recorder (hot-path instrumentation writes here).
    pub recorder: FlightRecorder,
    /// The decision audit trail, in tick order.
    pub audit: Vec<AuditRecord>,
    /// The epoch-aligned tail series.
    pub tail: TailSeries,
}

impl Telemetry {
    /// Builds the bundle for a config.
    pub fn new(cfg: TelemetryConfig) -> Telemetry {
        Telemetry {
            recorder: FlightRecorder::from_config(&cfg),
            audit: Vec::new(),
            tail: TailSeries::new(),
            cfg,
        }
    }

    /// Master switch.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// True if audit records should be collected.
    #[inline]
    pub fn audit_enabled(&self) -> bool {
        self.cfg.enabled && self.cfg.audit
    }

    /// True if the tail series should be collected.
    #[inline]
    pub fn tail_enabled(&self) -> bool {
        self.cfg.enabled && self.cfg.tail
    }

    /// Feeds one end-to-end latency into the current tail window.
    #[inline]
    pub fn record_latency(&mut self, ms: f64) {
        if self.tail_enabled() {
            self.tail.record(ms);
        }
    }

    /// Freezes the bundle into a run output (`None` when disabled).
    /// `pods` maps machine indices to Servpod names for exports.
    pub fn into_output(self, pods: Vec<String>) -> Option<TelemetryOutput> {
        if !self.cfg.enabled {
            return None;
        }
        Some(TelemetryOutput {
            pods,
            recorded: self.recorder.recorded(),
            dropped: self.recorder.dropped(),
            events: self.recorder.events(),
            audit: self.audit,
            tail: self.tail.into_points(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_recorder_stores_nothing() {
        let mut r = FlightRecorder::disabled();
        for i in 0..100 {
            r.record(at(i), EventKind::RequestAdmitted);
        }
        assert_eq!(r.recorded(), 0);
        assert!(r.is_empty());
        assert_eq!(r.events(), Vec::new());
    }

    #[test]
    fn ring_keeps_most_recent_in_order() {
        let mut r = FlightRecorder::new(4);
        for i in 0..10u64 {
            r.record(at(i), EventKind::Epoch { epoch: i as u32 });
        }
        assert_eq!(r.recorded(), 10);
        assert_eq!(r.dropped(), 6);
        let evs = r.events();
        assert_eq!(evs.len(), 4);
        let times: Vec<u64> = evs.iter().map(|e| e.t_ns).collect();
        assert_eq!(times, vec![6, 7, 8, 9], "oldest evicted, order kept");
    }

    #[test]
    fn partial_ring_returns_everything() {
        let mut r = FlightRecorder::new(8);
        for i in 0..3u64 {
            r.record(at(i), EventKind::RequestAdmitted);
        }
        assert_eq!(r.events().len(), 3);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = FlightRecorder::new(0);
        r.record(at(1), EventKind::RequestAdmitted);
        r.record(at(2), EventKind::RequestAdmitted);
        assert_eq!(r.capacity(), 1);
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.events()[0].t_ns, 2);
    }

    #[test]
    fn snapshot_round_trip_preserves_wrapped_ring() {
        use rhythm_snapshot::{Reader, Snapshot, Writer};
        let mut r = FlightRecorder::new(4);
        for i in 0..10u64 {
            r.record(at(i), EventKind::Epoch { epoch: i as u32 });
        }
        let mut w = Writer::new();
        r.encode(&mut w);
        let bytes = w.into_bytes();
        let mut back = FlightRecorder::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.recorded(), 10);
        assert_eq!(back.events(), r.events());
        // Continuation writes land in the same slots as the original.
        back.record(at(10), EventKind::RequestAdmitted);
        r.record(at(10), EventKind::RequestAdmitted);
        assert_eq!(back.events(), r.events());
        let mut wa = Writer::new();
        let mut wb = Writer::new();
        back.encode(&mut wa);
        r.encode(&mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn snapshot_rejects_inconsistent_ring() {
        use rhythm_snapshot::{Reader, Snapshot, SnapshotError, Writer};
        let mut r = FlightRecorder::new(4);
        r.record(at(1), EventKind::RequestAdmitted);
        let mut w = Writer::new();
        w.bool(true);
        w.u64(4); // cap
        w.u64(3); // seq claims 3 events recorded...
        r.events().encode(&mut w); // ...but only 1 is present
        let bytes = w.into_bytes();
        let decoded = FlightRecorder::decode(&mut Reader::new(&bytes));
        assert!(matches!(decoded.err(), Some(SnapshotError::Corrupt(_))));
    }

    #[test]
    fn telemetry_snapshot_round_trips() {
        use rhythm_snapshot::{Reader, Snapshot, Writer};
        let mut t = Telemetry::new(TelemetryConfig::full());
        t.recorder.record(at(5), EventKind::RequestAdmitted);
        t.record_latency(12.0);
        t.tail.tick(2.0, 100.0);
        let mut w = Writer::new();
        t.encode(&mut w);
        let bytes = w.into_bytes();
        let back = Telemetry::decode(&mut Reader::new(&bytes)).unwrap();
        assert!(back.enabled() && back.audit_enabled() && back.tail_enabled());
        let out = back.into_output(vec!["front".into()]).unwrap();
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.tail.len(), 1);
    }

    #[test]
    fn disabled_config_yields_no_output() {
        let t = Telemetry::new(TelemetryConfig::disabled());
        assert!(!t.enabled());
        assert!(t.into_output(vec!["a".into()]).is_none());
    }

    #[test]
    fn full_config_round_trips_into_output() {
        let mut t = Telemetry::new(TelemetryConfig::full());
        t.recorder.record(at(5), EventKind::RequestAdmitted);
        t.record_latency(12.0);
        t.tail.tick(2.0, 100.0);
        let out = t.into_output(vec!["front".into()]).unwrap();
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.recorded, 1);
        assert_eq!(out.tail.len(), 1);
        assert_eq!(out.pods, vec!["front".to_string()]);
    }
}
