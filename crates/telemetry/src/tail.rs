//! Streaming tail timelines: epoch-aligned p50/p95/p99 + slack series
//! built on the [`LatencyHistogram`] sketch.
//!
//! Each engine keeps one [`TailSeries`]. Latencies stream into the
//! current window; at every controller period (the cluster epoch) the
//! window is closed into a [`TailPoint`] and kept around as
//! `last_window` so the cluster runner can merge the per-engine sketches
//! in fixed replica order at the barrier — making the cluster-wide
//! series bit-identical for any worker-thread count.

use rhythm_sim::LatencyHistogram;
use serde_json::Value;

/// One closed window of the tail timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TailPoint {
    /// Virtual time of the window close, in seconds.
    pub t_s: f64,
    /// Requests completed inside the window.
    pub count: u64,
    /// Median latency in ms (0 for an empty window).
    pub p50_ms: f64,
    /// 95th-percentile latency in ms.
    pub p95_ms: f64,
    /// 99th-percentile latency in ms.
    pub p99_ms: f64,
    /// Slack of the window's p99 against the SLA: `(SLA - p99) / SLA`.
    /// An empty window reports full slack (1.0).
    pub slack: f64,
}

impl TailPoint {
    /// Builds a point by summarising a (possibly empty) window sketch.
    pub fn from_window(hist: &LatencyHistogram, t_s: f64, sla_ms: f64) -> TailPoint {
        if hist.is_empty() {
            return TailPoint {
                t_s,
                count: 0,
                p50_ms: 0.0,
                p95_ms: 0.0,
                p99_ms: 0.0,
                slack: 1.0,
            };
        }
        let p99 = hist.quantile(0.99);
        TailPoint {
            t_s,
            count: hist.count(),
            p50_ms: hist.quantile(0.50),
            p95_ms: hist.quantile(0.95),
            p99_ms: p99,
            // No (finite) SLA means nothing to run out of: full slack.
            slack: if sla_ms.is_finite() && sla_ms > 0.0 {
                (sla_ms - p99) / sla_ms
            } else {
                1.0
            },
        }
    }

    /// Renders the point as a JSON object. `scope` is `"replica"` plus an
    /// index for per-engine series or `"cluster"` for the merged one.
    pub fn to_value(&self, scope: &str, replica: Option<usize>) -> Value {
        let mut pairs: Vec<(String, Value)> = vec![
            ("type".into(), Value::String("tail".into())),
            ("scope".into(), Value::String(scope.into())),
        ];
        if let Some(r) = replica {
            pairs.push(("replica".into(), Value::UInt(r as u64)));
        }
        pairs.push(("t_s".into(), Value::Float(self.t_s)));
        pairs.push(("count".into(), Value::UInt(self.count)));
        pairs.push(("p50_ms".into(), Value::Float(self.p50_ms)));
        pairs.push(("p95_ms".into(), Value::Float(self.p95_ms)));
        pairs.push(("p99_ms".into(), Value::Float(self.p99_ms)));
        pairs.push(("slack".into(), Value::Float(self.slack)));
        Value::Object(pairs)
    }
}

/// A streaming tail series: latencies go into the current window, which
/// [`TailSeries::tick`] closes into a point at every controller period.
#[derive(Clone, Debug)]
pub struct TailSeries {
    window: LatencyHistogram,
    /// The sketch of the most recently closed window, kept so a cluster
    /// merge can combine per-engine windows after the tick.
    last_window: LatencyHistogram,
    points: Vec<TailPoint>,
}

impl TailSeries {
    /// An empty series using the default sketch resolution.
    pub fn new() -> TailSeries {
        TailSeries {
            window: LatencyHistogram::new(),
            last_window: LatencyHistogram::new(),
            points: Vec::new(),
        }
    }

    /// Streams one end-to-end latency (ms) into the current window.
    #[inline]
    pub fn record(&mut self, ms: f64) {
        self.window.record(ms);
    }

    /// Closes the current window at virtual time `t_s`, appends its
    /// point, and retires the sketch into `last_window`.
    pub fn tick(&mut self, t_s: f64, sla_ms: f64) {
        self.points
            .push(TailPoint::from_window(&self.window, t_s, sla_ms));
        std::mem::swap(&mut self.window, &mut self.last_window);
        self.window.reset();
    }

    /// The sketch of the most recently closed window (for cross-engine
    /// merging at an epoch barrier).
    pub fn last_window(&self) -> &LatencyHistogram {
        &self.last_window
    }

    /// Points closed so far.
    pub fn points(&self) -> &[TailPoint] {
        &self.points
    }

    /// Consumes the series into its points.
    pub fn into_points(self) -> Vec<TailPoint> {
        self.points
    }
}

impl Default for TailSeries {
    fn default() -> Self {
        TailSeries::new()
    }
}

impl rhythm_snapshot::Snapshot for TailPoint {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        w.f64(self.t_s);
        w.u64(self.count);
        w.f64(self.p50_ms);
        w.f64(self.p95_ms);
        w.f64(self.p99_ms);
        w.f64(self.slack);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(TailPoint {
            t_s: r.f64()?,
            count: r.u64()?,
            p50_ms: r.f64()?,
            p95_ms: r.f64()?,
            p99_ms: r.f64()?,
            slack: r.f64()?,
        })
    }
}

impl rhythm_snapshot::Snapshot for TailSeries {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        self.window.encode(w);
        self.last_window.encode(w);
        self.points.encode(w);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(TailSeries {
            window: rhythm_snapshot::Snapshot::decode(r)?,
            last_window: rhythm_snapshot::Snapshot::decode(r)?,
            points: rhythm_snapshot::Snapshot::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_reports_full_slack() {
        let mut s = TailSeries::new();
        s.tick(2.0, 100.0);
        let p = s.points()[0];
        assert_eq!(p.count, 0);
        assert_eq!(p.p99_ms, 0.0);
        assert_eq!(p.slack, 1.0);
    }

    #[test]
    fn windows_are_disjoint() {
        let mut s = TailSeries::new();
        for _ in 0..100 {
            s.record(10.0);
        }
        s.tick(2.0, 100.0);
        for _ in 0..100 {
            s.record(50.0);
        }
        s.tick(4.0, 100.0);
        let pts = s.points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].count, 100);
        assert_eq!(pts[1].count, 100);
        // Each window only sees its own latencies (1% sketch error).
        assert!((pts[0].p99_ms - 10.0).abs() / 10.0 < 0.02, "{:?}", pts[0]);
        assert!((pts[1].p99_ms - 50.0).abs() / 50.0 < 0.02, "{:?}", pts[1]);
        assert!(pts[0].slack > pts[1].slack);
    }

    #[test]
    fn last_window_holds_retired_sketch() {
        let mut s = TailSeries::new();
        for _ in 0..10 {
            s.record(25.0);
        }
        s.tick(2.0, 100.0);
        assert_eq!(s.last_window().count(), 10);
        // A second, empty tick retires an empty window.
        s.tick(4.0, 100.0);
        assert_eq!(s.last_window().count(), 0);
    }

    #[test]
    fn negative_slack_when_tail_beyond_sla() {
        let mut s = TailSeries::new();
        for _ in 0..10 {
            s.record(200.0);
        }
        s.tick(2.0, 100.0);
        assert!(s.points()[0].slack < 0.0);
    }

    #[test]
    fn snapshot_round_trip_keeps_open_window_and_points() {
        use rhythm_snapshot::{Reader, Snapshot, Writer};
        let mut s = TailSeries::new();
        for _ in 0..50 {
            s.record(10.0);
        }
        s.tick(2.0, 100.0);
        for _ in 0..7 {
            s.record(42.0);
        }
        let mut w = Writer::new();
        s.encode(&mut w);
        let bytes = w.into_bytes();
        let mut back = TailSeries::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.points(), s.points());
        assert_eq!(back.last_window().count(), 50);
        // The open window resumes mid-stream: closing it sees the 7
        // latencies recorded before the snapshot.
        back.tick(4.0, 100.0);
        assert_eq!(back.points()[1].count, 7);
        // Re-encode of the restored series is bit-identical.
        let mut w2 = Writer::new();
        let restored = TailSeries::decode(&mut Reader::new(&bytes)).unwrap();
        restored.encode(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);
    }

    #[test]
    fn json_scopes_replica_and_cluster() {
        let p = TailPoint {
            t_s: 2.0,
            count: 5,
            p50_ms: 1.0,
            p95_ms: 2.0,
            p99_ms: 3.0,
            slack: 0.97,
        };
        let rep = serde_json::to_string(&p.to_value("replica", Some(3))).unwrap();
        assert!(rep.contains("\"scope\":\"replica\""), "{rep}");
        assert!(rep.contains("\"replica\":3"), "{rep}");
        let clu = serde_json::to_string(&p.to_value("cluster", None)).unwrap();
        assert!(clu.contains("\"scope\":\"cluster\""), "{clu}");
        assert!(!clu.contains("\"replica\""), "{clu}");
    }
}
