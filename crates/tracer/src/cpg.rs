//! Causal path graph (CPG) construction (§3.3, Figure 4).
//!
//! The CPG is a directed graph whose vertices are the event sets of
//! Servpods and whose edges are causal relations between events. At the
//! Servpod granularity this collapses to: which pods exchange messages,
//! in which direction, and how often — which is what the analyzer needs
//! to know the service call paths.

use crate::capture::is_lc_program;
use crate::event::{EventKind, SysEvent};
use std::collections::{BTreeMap, BTreeSet};

/// Servpod-level causal path graph.
#[derive(Clone, Debug, Default)]
pub struct Cpg {
    pods: BTreeSet<u32>,
    /// Message edges `(from pod, to pod) -> count` (both call and reply
    /// directions appear; replies are the reverse edges).
    edges: BTreeMap<(u32, u32), u64>,
    /// Pods that receive requests directly from the client.
    entries: BTreeSet<u32>,
}

impl Cpg {
    /// Builds the CPG from a captured event stream.
    ///
    /// Only LC-program events participate (the context-identifier filter);
    /// each SEND between two pods contributes one edge occurrence.
    pub fn from_events(events: &[SysEvent], client_ip: u32) -> Cpg {
        let mut cpg = Cpg::default();
        for e in events {
            if !is_lc_program(e.ctx.program) {
                continue;
            }
            let pod = e.ctx.host_ip.saturating_sub(1);
            cpg.pods.insert(pod);
            match e.kind {
                EventKind::Recv if e.msg.sender_ip == client_ip => {
                    cpg.entries.insert(pod);
                }
                EventKind::Send if e.msg.receiver_ip != client_ip && e.msg.receiver_ip >= 1 => {
                    let dst = e.msg.receiver_ip - 1;
                    if dst != pod {
                        *cpg.edges.entry((pod, dst)).or_insert(0) += 1;
                        cpg.pods.insert(dst);
                    }
                }
                _ => {}
            }
        }
        cpg
    }

    /// All pods observed in the trace.
    pub fn pods(&self) -> Vec<u32> {
        self.pods.iter().copied().collect()
    }

    /// Pods that receive requests directly from the client.
    pub fn entry_pods(&self) -> Vec<u32> {
        self.entries.iter().copied().collect()
    }

    /// How many messages flowed from `a` to `b`.
    pub fn edge_count(&self, a: u32, b: u32) -> u64 {
        self.edges.get(&(a, b)).copied().unwrap_or(0)
    }

    /// The *call* edges: `a → b` where the forward count is at least the
    /// reverse count (calls always have matching replies, so forward and
    /// reverse counts are equal; we emit each undirected pair once in
    /// call direction, which is the direction out of an entry pod).
    pub fn call_edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (&(a, b), &n) in &self.edges {
            if a < b && n > 0 {
                // Direction: the endpoint closer to an entry calls the
                // other. With per-request forward edges equal to reverse
                // edges, orient from the lexically smaller unless the
                // larger is an entry.
                if self.entries.contains(&b) && !self.entries.contains(&a) {
                    out.push((b, a));
                } else {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Renders the graph in Graphviz dot format (for the tracing
    /// example).
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph cpg {\n");
        for p in &self.pods {
            let shape = if self.entries.contains(p) {
                " [shape=doublecircle]"
            } else {
                ""
            };
            s.push_str(&format!("  pod{p}{shape};\n"));
        }
        for (&(a, b), &n) in &self.edges {
            s.push_str(&format!("  pod{a} -> pod{b} [label=\"{n}\"];\n"));
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{chain_visit, CaptureConfig, EventCapture};
    use rhythm_sim::SimTime;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn trace() -> Vec<SysEvent> {
        let mut cap = EventCapture::new(
            CaptureConfig {
                noise_events_per_request: 10,
                ..CaptureConfig::default()
            },
            1,
        );
        for t in [0u64, 50, 100] {
            let req = chain_visit(
                &[0, 1, 2],
                &[
                    vec![(ms(t), ms(t + 1)), (ms(t + 20), ms(t + 21))],
                    vec![(ms(t + 1), ms(t + 5)), (ms(t + 15), ms(t + 20))],
                    vec![(ms(t + 5), ms(t + 15))],
                ],
            );
            cap.record_request(&req);
        }
        cap.finish()
    }

    #[test]
    fn discovers_all_pods_and_entry() {
        let cpg = Cpg::from_events(&trace(), 0);
        assert_eq!(cpg.pods(), vec![0, 1, 2]);
        assert_eq!(cpg.entry_pods(), vec![0]);
    }

    #[test]
    fn edges_count_messages_both_directions() {
        let cpg = Cpg::from_events(&trace(), 0);
        // 3 requests: 3 calls 0→1, 3 replies 1→0, etc.
        assert_eq!(cpg.edge_count(0, 1), 3);
        assert_eq!(cpg.edge_count(1, 0), 3);
        assert_eq!(cpg.edge_count(1, 2), 3);
        assert_eq!(cpg.edge_count(2, 1), 3);
        assert_eq!(cpg.edge_count(0, 2), 0, "no direct 0→2 messages");
    }

    #[test]
    fn call_edges_follow_the_chain() {
        let cpg = Cpg::from_events(&trace(), 0);
        assert_eq!(cpg.call_edges(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn noise_does_not_add_pods() {
        // Noise events use program ids < 1000 and random hosts; the
        // filter must keep them out of the graph.
        let cpg = Cpg::from_events(&trace(), 0);
        assert!(cpg.pods().len() == 3);
    }

    #[test]
    fn dot_output_mentions_pods_and_edges() {
        let cpg = Cpg::from_events(&trace(), 0);
        let dot = cpg.to_dot();
        assert!(dot.contains("pod0"));
        assert!(dot.contains("pod2"));
        assert!(dot.contains("->"));
        assert!(dot.contains("doublecircle"), "entry pod highlighted");
    }

    #[test]
    fn empty_trace_empty_graph() {
        let cpg = Cpg::from_events(&[], 0);
        assert!(cpg.pods().is_empty());
        assert!(cpg.call_edges().is_empty());
    }
}
