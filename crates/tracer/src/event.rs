//! System-event records and identifiers.

use rhythm_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four event types the tracer records in each Servpod (§3.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    /// `syscall_accept`: acceptance of a request.
    Accept,
    /// `tcp_rcvmsg`: receiving a data package.
    Recv,
    /// `tcp_sendmsg`: sending a data package.
    Send,
    /// `syscall_close`: close of a request call.
    Close,
}

/// Context identifier: `<hostIP, programName, processID, threadID>`.
///
/// Used to filter noise from unrelated processes and to establish
/// intra-Servpod causality (a RECV happens-before a SEND sharing the same
/// context).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ContextId {
    /// Host (machine) address; one Servpod per host in this deployment.
    pub host_ip: u32,
    /// Program name, interned as an id (e.g. 1 = "mysqld").
    pub program: u32,
    /// Process id.
    pub process_id: u32,
    /// Thread id.
    pub thread_id: u32,
}

/// Message identifier:
/// `<senderIP, senderPort, receiverIP, receiverPort, messageSize>`.
///
/// Used to establish inter-Servpod causality (a SEND happens-before the
/// RECV with the same identifier on the neighbour Servpod).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MessageId {
    /// Sender host address.
    pub sender_ip: u32,
    /// Sender TCP port (ephemeral per request-hop, or fixed under
    /// persistent connections).
    pub sender_port: u16,
    /// Receiver host address.
    pub receiver_ip: u32,
    /// Receiver TCP port.
    pub receiver_port: u16,
    /// Message size in bytes.
    pub message_size: u32,
}

/// One captured system event.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SysEvent {
    /// Event type.
    pub kind: EventKind,
    /// Capture timestamp.
    pub timestamp: SimTime,
    /// Context identifier of the capturing process.
    pub ctx: ContextId,
    /// Message identifier of the packet (zeroed for ACCEPT/CLOSE).
    pub msg: MessageId,
}

impl MessageId {
    /// The all-zero identifier used for ACCEPT/CLOSE events.
    pub const NONE: MessageId = MessageId {
        sender_ip: 0,
        sender_port: 0,
        receiver_ip: 0,
        receiver_port: 0,
        message_size: 0,
    };

    /// The identifier of the reverse direction (reply on the same
    /// connection).
    pub fn reversed(&self, size: u32) -> MessageId {
        MessageId {
            sender_ip: self.receiver_ip,
            sender_port: self.receiver_port,
            receiver_ip: self.sender_ip,
            receiver_port: self.sender_port,
            message_size: size,
        }
    }

    /// The connection 4-tuple, ignoring message size (two messages on the
    /// same persistent connection share this).
    pub fn connection(&self) -> (u32, u16, u32, u16) {
        (
            self.sender_ip,
            self.sender_port,
            self.receiver_ip,
            self.receiver_port,
        )
    }
}

impl fmt::Display for SysEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?}@{} host{} prog{} pid{} tid{} [{}:{}->{}:{} {}B]",
            self.kind,
            self.timestamp,
            self.ctx.host_ip,
            self.ctx.program,
            self.ctx.process_id,
            self.ctx.thread_id,
            self.msg.sender_ip,
            self.msg.sender_port,
            self.msg.receiver_ip,
            self.msg.receiver_port,
            self.msg.message_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversed_swaps_endpoints() {
        let m = MessageId {
            sender_ip: 1,
            sender_port: 100,
            receiver_ip: 2,
            receiver_port: 200,
            message_size: 64,
        };
        let r = m.reversed(128);
        assert_eq!(r.sender_ip, 2);
        assert_eq!(r.sender_port, 200);
        assert_eq!(r.receiver_ip, 1);
        assert_eq!(r.receiver_port, 100);
        assert_eq!(r.message_size, 128);
    }

    #[test]
    fn connection_ignores_size() {
        let a = MessageId {
            sender_ip: 1,
            sender_port: 2,
            receiver_ip: 3,
            receiver_port: 4,
            message_size: 10,
        };
        let b = MessageId {
            message_size: 999,
            ..a
        };
        assert_eq!(a.connection(), b.connection());
    }

    #[test]
    fn display_is_readable() {
        let e = SysEvent {
            kind: EventKind::Recv,
            timestamp: SimTime::from_millis(5),
            ctx: ContextId {
                host_ip: 7,
                program: 1,
                process_id: 42,
                thread_id: 3,
            },
            msg: MessageId::NONE,
        };
        let s = format!("{e}");
        assert!(s.contains("Recv"));
        assert!(s.contains("host7"));
    }
}
