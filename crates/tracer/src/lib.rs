//! Non-intrusive request tracer (paper §3.3).
//!
//! An LC request traverses several Servpods; the tracer reconstructs its
//! causal path and the time it spent *locally* in each Servpod without
//! instrumenting the application. The paper does this by capturing four
//! kernel events per Servpod via SystemTap:
//!
//! * `syscall_accept` (ACCEPT) — acceptance of a request,
//! * `tcp_rcvmsg` (RECV) — receiving a data package,
//! * `tcp_sendmsg` (SEND) — sending a data package,
//! * `syscall_close` (CLOSE) — close of a request call,
//!
//! each tagged with a **context identifier** `<hostIP, programName,
//! processID, threadID>` and a **message identifier** `<senderIP,
//! senderPort, receiverIP, receiverPort, messageSize>`.
//!
//! This crate implements the full pipeline against simulated event
//! streams:
//!
//! * [`event`] — the event record and identifiers.
//! * [`capture`] — event-stream synthesis from ground-truth request
//!   timelines (what the kernel probe would have produced), including
//!   unrelated-process noise, non-blocking thread interleaving and
//!   persistent-TCP port reuse.
//! * [`pairing`] — intra-Servpod causality: FIFO RECV→SEND matching per
//!   context, yielding per-Servpod residence segments and per-request
//!   sojourn times.
//! * [`cpg`] — the causal path graph (Figure 4) from inter-Servpod
//!   message matching.
//!
//! The mismatching hazards the paper analyzes are reproduced faithfully:
//! with non-blocking threads or persistent connections, *individual*
//! sojourn times may be attributed to the wrong request, but the
//! *mean* sojourn per Servpod is invariant (§3.3, Figure 5) — the
//! property tests in this crate verify that identity.
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

pub mod capture;
pub mod cpg;
pub mod event;
pub mod pairing;

pub use capture::{CaptureConfig, EventCapture, VisitNode};
pub use cpg::Cpg;
pub use event::{ContextId, EventKind, MessageId, SysEvent};
pub use pairing::{PairingOutput, Pairer};
