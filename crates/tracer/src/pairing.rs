//! Intra- and inter-Servpod causality pairing (§3.3).
//!
//! Processing the filtered event stream in timestamp order:
//!
//! * **IntraServpod causality** — a RECV happens-before a SEND sharing
//!   the same context identifier. Each SEND is matched with the earliest
//!   pending RECV of its context (FIFO, "with respect to their order of
//!   occurrence"), closing one *residence segment* whose duration counts
//!   toward the Servpod's sojourn.
//! * **InterServpod causality** — a SEND happens-before the RECV with
//!   the same message identifier on the neighbour Servpod. Request labels
//!   propagate along these edges, so every segment is attributed to the
//!   request that (FIFO-plausibly) caused it.
//!
//! Under non-blocking threads or persistent TCP connections the FIFO
//! matching can attribute a segment to the wrong request — exactly the
//! hazard the paper describes — but the *sum* (hence mean) of segment
//! durations per Servpod is invariant under any such permutation, which
//! is why the contribution analyzer consumes means (Equations 1-3).

use crate::capture::is_lc_program;
use crate::event::{ContextId, EventKind, MessageId, SysEvent};
use rhythm_sim::SimTime;
use std::collections::{BTreeMap, HashMap, VecDeque};

/// Result of pairing one event trace.
#[derive(Clone, Debug, Default)]
pub struct PairingOutput {
    /// Residence segments per Servpod: `(request label, duration ms)`.
    pub segments: BTreeMap<u32, Vec<(u64, f64)>>,
    /// Number of distinct requests observed entering the service.
    pub request_count: u64,
    /// SEND events with no pending RECV on their context (fan-out
    /// siblings produce these by construction).
    pub unmatched_sends: u64,
    /// RECV events left pending at the end of the trace.
    pub unmatched_recvs: u64,
    /// Events dropped by the context-identifier noise filter.
    pub filtered_noise: u64,
}

impl PairingOutput {
    /// Servpods that produced at least one segment.
    pub fn pods(&self) -> Vec<u32> {
        self.segments.keys().copied().collect()
    }

    /// Per-request sojourn times at `pod` (sum of the request's segments
    /// there), in request-label order. Requests that never visited the
    /// pod are absent.
    pub fn sojourns(&self, pod: u32) -> Vec<f64> {
        let Some(segs) = self.segments.get(&pod) else {
            return Vec::new();
        };
        let mut per_request: BTreeMap<u64, f64> = BTreeMap::new();
        for &(label, ms) in segs {
            *per_request.entry(label).or_insert(0.0) += ms;
        }
        per_request.into_values().collect()
    }

    /// Mean sojourn time at `pod` in ms (0 if the pod was never visited).
    pub fn mean_sojourn(&self, pod: u32) -> f64 {
        let s = self.sojourns(pod);
        if s.is_empty() {
            0.0
        } else {
            s.iter().sum::<f64>() / s.len() as f64
        }
    }

    /// Total residence time recorded at `pod` in ms.
    pub fn total_residence(&self, pod: u32) -> f64 {
        self.segments
            .get(&pod)
            .map(|v| v.iter().map(|&(_, ms)| ms).sum())
            .unwrap_or(0.0)
    }
}

/// A pending (unmatched) RECV on some context.
struct PendingRecv {
    at: SimTime,
    label: u64,
}

/// The §3.3 pairing engine.
pub struct Pairer {
    client_ip: u32,
}

impl Pairer {
    /// Creates a pairer; requests are recognized as *entering* the
    /// service when their RECV's sender is `client_ip`.
    pub fn new(client_ip: u32) -> Self {
        Pairer { client_ip }
    }

    /// Pairs a timestamp-sorted event trace into per-Servpod, per-request
    /// residence segments.
    pub fn pair(&self, events: &[SysEvent]) -> PairingOutput {
        let mut out = PairingOutput::default();
        // FIFO of pending RECVs per context (intra-Servpod causality).
        // BTreeMap, not HashMap: the leftover-RECV accounting at the end
        // iterates it, and iteration order must be deterministic (D01).
        let mut pending: BTreeMap<ContextId, VecDeque<PendingRecv>> = BTreeMap::new();
        // FIFO of request labels per in-flight message identifier
        // (inter-Servpod causality).
        // lint:allow(D01) -- lookup-only: entry()/get_mut() by MessageId, never iterated
        let mut in_flight: HashMap<MessageId, VecDeque<u64>> = HashMap::new();
        let mut next_label = 0u64;

        for e in events {
            if !is_lc_program(e.ctx.program) {
                out.filtered_noise += 1;
                continue;
            }
            match e.kind {
                EventKind::Accept | EventKind::Close => {
                    // Request boundaries; labels are assigned at the entry
                    // RECV which carries the client message identifier.
                }
                EventKind::Recv => {
                    let label = if e.msg.sender_ip == self.client_ip {
                        let l = next_label;
                        next_label += 1;
                        out.request_count += 1;
                        l
                    } else {
                        // Inherit from the matching SEND (FIFO per
                        // identifier: persistent connections share
                        // identifiers, so this can mis-attribute).
                        match in_flight.get_mut(&e.msg).and_then(|q| q.pop_front()) {
                            Some(l) => l,
                            None => {
                                // A reply/message we never saw sent
                                // (should not happen in a complete trace);
                                // treat as a fresh anonymous label.
                                let l = next_label;
                                next_label += 1;
                                l
                            }
                        }
                    };
                    pending.entry(e.ctx).or_default().push_back(PendingRecv {
                        at: e.timestamp,
                        label,
                    });
                }
                EventKind::Send => {
                    let popped = pending.get_mut(&e.ctx).and_then(|q| q.pop_front());
                    match popped {
                        Some(recv) => {
                            let pod = e.ctx.host_ip.saturating_sub(1);
                            let ms = e.timestamp.saturating_since(recv.at).as_millis_f64();
                            out.segments
                                .entry(pod)
                                .or_default()
                                .push((recv.label, ms));
                            // Propagate the label to the receiving side.
                            in_flight
                                .entry(e.msg)
                                .or_default()
                                .push_back(recv.label);
                        }
                        None => {
                            out.unmatched_sends += 1;
                            // Still propagate *a* label so the downstream
                            // RECV is not orphaned: use the most recent
                            // label (fan-out siblings share the parent's
                            // request).
                            let label = next_label.saturating_sub(1);
                            in_flight.entry(e.msg).or_default().push_back(label);
                        }
                    }
                }
            }
        }
        out.unmatched_recvs = pending.values().map(|q| q.len() as u64).sum();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::{chain_visit, CaptureConfig, EventCapture, VisitNode};
    use rhythm_sim::SimRng;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    /// A 3-pod chain request starting at `t0`, with per-pod work
    /// (pre/post around the downstream call).
    fn chain3(t0: u64) -> VisitNode {
        chain_visit(
            &[0, 1, 2],
            &[
                vec![(ms(t0), ms(t0 + 1)), (ms(t0 + 20), ms(t0 + 22))],
                vec![(ms(t0 + 1), ms(t0 + 5)), (ms(t0 + 15), ms(t0 + 20))],
                vec![(ms(t0 + 5), ms(t0 + 15))],
            ],
        )
    }

    fn capture(cfg: CaptureConfig, requests: &[VisitNode], seed: u64) -> Vec<SysEvent> {
        let mut cap = EventCapture::new(cfg, seed);
        for r in requests {
            cap.record_request(r);
        }
        cap.finish()
    }

    #[test]
    fn exact_sojourns_in_blocking_ephemeral_mode() {
        let cfg = CaptureConfig {
            noise_events_per_request: 0,
            ..CaptureConfig::default()
        };
        let events = capture(cfg, &[chain3(0), chain3(100)], 1);
        let out = Pairer::new(0).pair(&events);
        assert_eq!(out.request_count, 2);
        assert_eq!(out.unmatched_sends, 0);
        assert_eq!(out.unmatched_recvs, 0);
        assert_eq!(out.sojourns(0), vec![3.0, 3.0]);
        assert_eq!(out.sojourns(1), vec![9.0, 9.0]);
        assert_eq!(out.sojourns(2), vec![10.0, 10.0]);
    }

    #[test]
    fn noise_is_filtered_not_paired() {
        let cfg = CaptureConfig {
            noise_events_per_request: 40,
            ..CaptureConfig::default()
        };
        let events = capture(cfg, &[chain3(0)], 2);
        let out = Pairer::new(0).pair(&events);
        assert_eq!(out.filtered_noise, 40);
        assert_eq!(out.sojourns(0), vec![3.0]);
        assert_eq!(out.sojourns(1), vec![9.0]);
    }

    #[test]
    fn mean_sojourn_invariant_under_non_blocking_interleave() {
        // Two interleaved requests with *different* per-request sojourns
        // on one non-blocking thread: request A has a short pod-1 visit,
        // request B a long one, overlapping in time (Figure 5 scenario).
        let req_a = chain_visit(
            &[0, 1],
            &[
                vec![(ms(0), ms(1)), (ms(11), ms(12))],
                vec![(ms(1), ms(11))],
            ],
        );
        let req_b = chain_visit(
            &[0, 1],
            &[
                vec![(ms(2), ms(3)), (ms(7), ms(8))],
                vec![(ms(3), ms(7))],
            ],
        );
        let cfg = CaptureConfig {
            non_blocking: true,
            noise_events_per_request: 0,
            ..CaptureConfig::default()
        };
        let events = capture(cfg, &[req_a.clone(), req_b.clone()], 3);
        let out = Pairer::new(0).pair(&events);
        // Ground truth means.
        let mut truth = std::collections::BTreeMap::new();
        req_a.accumulate_sojourns(&mut truth);
        req_b.accumulate_sojourns(&mut truth);
        for (pod, sojourns) in truth {
            let true_mean = sojourns.iter().sum::<f64>() / sojourns.len() as f64;
            let got = out.mean_sojourn(pod);
            assert!(
                (got - true_mean).abs() < 1e-9,
                "pod {pod}: mean {got} vs truth {true_mean} (the paper's §3.3 identity)"
            );
        }
    }

    #[test]
    fn mean_sojourn_invariant_under_persistent_connections() {
        // Many overlapping requests on persistent connections: individual
        // attribution may be wrong, mean must hold.
        let mut requests = Vec::new();
        let mut rng = SimRng::from_seed(99);
        let mut t = 0u64;
        for _ in 0..50 {
            t += rng.below(4);
            requests.push(chain3(t));
        }
        let cfg = CaptureConfig {
            persistent_connections: true,
            non_blocking: true,
            noise_events_per_request: 0,
            ..CaptureConfig::default()
        };
        let events = capture(cfg, &requests, 4);
        let out = Pairer::new(0).pair(&events);
        let mut truth = std::collections::BTreeMap::new();
        for r in &requests {
            r.accumulate_sojourns(&mut truth);
        }
        for (pod, sojourns) in truth {
            let true_total: f64 = sojourns.iter().sum();
            let got_total = out.total_residence(pod);
            assert!(
                (got_total - true_total).abs() < 1e-6,
                "pod {pod}: total residence {got_total} vs truth {true_total}"
            );
        }
        assert_eq!(out.request_count, 50);
    }

    #[test]
    fn fan_out_produces_unmatched_sibling_sends() {
        let fan = VisitNode {
            pod: 0,
            phases: vec![(ms(0), ms(1)), (ms(9), ms(10))],
            children: vec![
                VisitNode {
                    pod: 1,
                    phases: vec![(ms(1), ms(6))],
                    children: vec![],
                    parallel: false,
                },
                VisitNode {
                    pod: 2,
                    phases: vec![(ms(1), ms(9))],
                    children: vec![],
                    parallel: false,
                },
            ],
            parallel: true,
        };
        let cfg = CaptureConfig {
            noise_events_per_request: 0,
            ..CaptureConfig::default()
        };
        let events = capture(cfg, &[fan], 5);
        let out = Pairer::new(0).pair(&events);
        // The second sibling SEND has no pending RECV: counted, not lost.
        assert_eq!(out.unmatched_sends, 1);
        // Leaf pods are still exact.
        assert_eq!(out.sojourns(1), vec![5.0]);
        assert_eq!(out.sojourns(2), vec![8.0]);
    }

    #[test]
    fn pairing_output_is_pinned() {
        // Regression pin for the D01 fix (pending: HashMap → BTreeMap,
        // in_flight kept lookup-only): the exact per-pod segment lists —
        // labels, durations and order — must not move, only sums were
        // ever guaranteed before.
        let cfg = CaptureConfig {
            persistent_connections: true,
            non_blocking: true,
            noise_events_per_request: 7,
            ..CaptureConfig::default()
        };
        let events = capture(cfg, &[chain3(0), chain3(4), chain3(9)], 0xD01);
        let out = Pairer::new(0).pair(&events);
        assert_eq!(out.request_count, 3);
        assert_eq!(out.filtered_noise, 21);
        assert_eq!(out.pods(), vec![0, 1, 2]);
        // Non-blocking mode closes one segment per work phase; the exact
        // (label, duration) sequence below is the deterministic FIFO
        // attribution order.
        assert_eq!(
            out.segments[&0],
            vec![(0, 1.0), (1, 1.0), (2, 1.0), (0, 2.0), (1, 2.0), (2, 2.0)],
            "pod 0 segments moved"
        );
        assert_eq!(
            out.segments[&1],
            vec![(0, 4.0), (1, 4.0), (2, 4.0), (0, 5.0), (1, 5.0), (2, 5.0)],
            "pod 1 segments moved"
        );
        assert_eq!(
            out.segments[&2],
            vec![(0, 10.0), (1, 10.0), (2, 10.0)],
            "pod 2 segments moved"
        );
        assert_eq!(out.sojourns(0), vec![3.0, 3.0, 3.0]);
        assert_eq!(out.sojourns(1), vec![9.0, 9.0, 9.0]);
        assert_eq!(out.unmatched_sends, 0);
        assert_eq!(out.unmatched_recvs, 0);
    }

    #[test]
    fn empty_trace() {
        let out = Pairer::new(0).pair(&[]);
        assert_eq!(out.request_count, 0);
        assert!(out.pods().is_empty());
        assert_eq!(out.mean_sojourn(0), 0.0);
    }

    #[test]
    fn sojourns_absent_pod_empty() {
        let cfg = CaptureConfig {
            noise_events_per_request: 0,
            ..CaptureConfig::default()
        };
        let events = capture(cfg, &[chain3(0)], 6);
        let out = Pairer::new(0).pair(&events);
        assert!(out.sojourns(9).is_empty());
    }
}
