//! The six latency-critical services of Table 1.
//!
//! Each constructor builds a [`ServiceSpec`] whose component DAG matches
//! the paper's description and whose parameters are calibrated so the
//! *relative* behaviour matches the paper's measurements:
//!
//! * sojourn-time ordering and growth over load (Figure 6),
//! * per-component interference-sensitivity ordering (Figure 2),
//! * contribution ordering used for thresholds (§3.5.1, §5.3.2).
//!
//! Absolute time scales are normalized so every service saturates at a
//! simulation-friendly few hundred requests/second; Table 1's nominal
//! MaxLoad/SLA values are carried for reporting.

use crate::component::ComponentBuilder;
use crate::sensitivity::Sensitivity;
use crate::service::{Call, ServiceNode, ServiceSpec};

/// E-commerce (TPC-W): HAProxy → Tomcat → Amoeba → MySQL.
///
/// MySQL is the bottleneck and the most interference-sensitive Servpod
/// (paper: loadlimit 76%, slacklimit 0.347); Tomcat is second (87%,
/// 0.078); HAProxy has tiny sojourn but high relative variance; Amoeba is
/// small and very stable (Figure 6).
pub fn ecommerce() -> ServiceSpec {
    let haproxy = ComponentBuilder::new("haproxy", 0.8, 0.75)
        .post(0.3, 0.75)
        .workers(16)
        .contention(1.5)
        .knee(0.95)
        .cores(4)
        .mem_mb(2 * 1024)
        .membw_per_req(2.0)
        .net_per_req(24.0)
        .llc_mb(2.0)
        .sensitivity(Sensitivity::new(0.1, 0.12, 0.1, 0.6, 0.5))
        .build();
    let tomcat = ComponentBuilder::new("tomcat", 18.0, 0.45)
        .post(6.0, 0.45)
        .workers(24)
        .contention(3.0)
        .knee(0.93)
        .cores(16)
        .mem_mb(24 * 1024)
        .membw_per_req(18.0)
        .net_per_req(16.0)
        .llc_mb(10.0)
        // Tomcat is the most DVFS-sensitive of the four (Figure 2b).
        .sensitivity(Sensitivity::new(0.25, 0.5, 0.4, 0.15, 0.9))
        .build();
    let amoeba = ComponentBuilder::new("amoeba", 2.2, 0.15)
        .workers(16)
        .contention(1.0)
        .knee(0.98)
        .cores(4)
        .mem_mb(4 * 1024)
        .membw_per_req(3.0)
        .net_per_req(12.0)
        .llc_mb(2.0)
        .sensitivity(Sensitivity::new(0.08, 0.12, 0.1, 0.12, 0.3))
        .build();
    let mysql = ComponentBuilder::new("mysql", 14.0, 0.80)
        .workers(12)
        .contention(8.0)
        .knee(0.78)
        .cores(12)
        .mem_mb(32 * 1024)
        .membw_per_req(45.0)
        .net_per_req(8.0)
        .llc_mb(16.0)
        // MySQL suffers most under stream-dram(big)/stream-llc(big)/
        // CPU-stress/iperf (Figure 2b).
        .sensitivity(Sensitivity::new(0.5, 1.2, 1.6, 0.6, 0.4))
        .build();
    ServiceSpec {
        name: "e-commerce".into(),
        nodes: vec![
            ServiceNode::seq(haproxy, vec![Call::always(1)]),
            ServiceNode::seq(tomcat, vec![Call::always(2)]),
            ServiceNode::seq(amoeba, vec![Call::always(3)]),
            ServiceNode::leaf(mysql),
        ],
        sla_ms: 250.0,
        nominal_maxload_qps: 1300.0,
        containers: 16,
    }
}

/// Redis key-value store: Master fanning out to a Slave Servpod.
///
/// The Master distributes requests and operates on data, so it leans on
/// LLC, memory and network bandwidth far more than the Slave (Figure 2a:
/// up to 28× difference under stream-llc(big)).
pub fn redis() -> ServiceSpec {
    let master = ComponentBuilder::new("master", 6.0, 0.50)
        .post(3.0, 0.50)
        .workers(8)
        .contention(6.0)
        .knee(0.87)
        .cores(10)
        .mem_mb(48 * 1024)
        .membw_per_req(30.0)
        .net_per_req(12.0)
        .llc_mb(18.0)
        .sensitivity(Sensitivity::new(0.5, 2.2, 1.8, 1.0, 0.6))
        .build();
    let slave = ComponentBuilder::new("slave", 7.0, 0.35)
        .workers(10)
        .contention(3.0)
        .knee(0.97)
        .cores(10)
        .mem_mb(48 * 1024)
        .membw_per_req(12.0)
        .net_per_req(8.0)
        .llc_mb(6.0)
        .sensitivity(Sensitivity::new(0.12, 0.35, 0.452, 0.25, 0.35))
        .build();
    ServiceSpec {
        name: "redis".into(),
        nodes: vec![
            ServiceNode::fan_out(master, vec![Call::always(1)]),
            ServiceNode::leaf(slave),
        ],
        sla_ms: 1.15,
        nominal_maxload_qps: 86_000.0,
        containers: 18,
    }
}

/// Solr search: Apache+Solr frontend with a Zookeeper coordination
/// Servpod visited by a fraction of requests.
///
/// Zookeeper has the smallest contribution of any Servpod in the
/// evaluation (loadlimit 0.93, slacklimit 0.035) — it is where Rhythm
/// gains the most BE throughput (Figure 9c).
pub fn solr() -> ServiceSpec {
    let apache_solr = ComponentBuilder::new("apache+solr", 30.0, 0.55)
        .workers(16)
        .contention(6.0)
        .knee(0.82)
        .cores(20)
        .mem_mb(32 * 1024)
        .membw_per_req(40.0)
        .net_per_req(30.0)
        .llc_mb(14.0)
        .sensitivity(Sensitivity::new(0.5, 1.3, 1.2, 0.5, 0.8))
        .build();
    let zookeeper = ComponentBuilder::new("zookeeper", 4.0, 0.20)
        .workers(8)
        .contention(1.5)
        .knee(0.99)
        .cores(4)
        .mem_mb(4 * 1024)
        .membw_per_req(2.0)
        .net_per_req(4.0)
        .llc_mb(1.5)
        .sensitivity(Sensitivity::new(0.1, 0.25, 0.3, 0.15, 0.3))
        .build();
    ServiceSpec {
        name: "solr".into(),
        nodes: vec![
            ServiceNode::seq(apache_solr, vec![Call::sometimes(1, 0.4)]),
            ServiceNode::leaf(zookeeper),
        ],
        sla_ms: 350.0,
        nominal_maxload_qps: 400.0,
        containers: 15,
    }
}

/// Elasticsearch: Kibana frontend calling the Index engine.
pub fn elasticsearch() -> ServiceSpec {
    let kibana = ComponentBuilder::new("kibana", 8.0, 0.50)
        .post(4.0, 0.50)
        .workers(16)
        .contention(3.0)
        .knee(0.96)
        .cores(8)
        .mem_mb(8 * 1024)
        .membw_per_req(8.0)
        .net_per_req(40.0)
        .llc_mb(4.0)
        .sensitivity(Sensitivity::new(0.2, 0.4, 0.4, 0.4, 0.5))
        .build();
    let index = ComponentBuilder::new("index", 14.0, 0.60)
        .workers(12)
        .contention(7.0)
        .knee(0.80)
        .cores(16)
        .mem_mb(48 * 1024)
        .membw_per_req(55.0)
        .net_per_req(20.0)
        .llc_mb(16.0)
        .sensitivity(Sensitivity::new(0.5, 1.4, 1.5, 0.4, 0.5))
        .build();
    ServiceSpec {
        name: "elasticsearch".into(),
        nodes: vec![
            ServiceNode::seq(kibana, vec![Call::always(1)]),
            ServiceNode::leaf(index),
        ],
        sla_ms: 200.0,
        nominal_maxload_qps: 750.0,
        containers: 12,
    }
}

/// Elgg social network: Nginx+PHP-FPM → Memcached, with cache misses
/// falling through to MySQL.
pub fn elgg() -> ServiceSpec {
    let nginx_php = ComponentBuilder::new("nginx+php-fpm", 20.0, 0.50)
        .post(8.0, 0.50)
        .workers(12)
        .contention(5.0)
        .knee(0.91)
        .cores(12)
        .mem_mb(16 * 1024)
        .membw_per_req(15.0)
        .net_per_req(36.0)
        .llc_mb(8.0)
        .sensitivity(Sensitivity::new(0.3, 0.6, 0.552, 0.4, 0.8))
        .build();
    let memcached = ComponentBuilder::new("memcached", 3.0, 0.30)
        .post(1.0, 0.30)
        .workers(16)
        .contention(1.5)
        .knee(0.93)
        .cores(6)
        .mem_mb(24 * 1024)
        .membw_per_req(10.0)
        .net_per_req(10.0)
        .llc_mb(12.0)
        .sensitivity(Sensitivity::new(0.3, 1.0, 0.8, 0.8, 0.3))
        .build();
    let mysql = ComponentBuilder::new("mysql", 40.0, 0.70)
        .workers(8)
        .contention(8.0)
        .knee(0.84)
        .cores(12)
        .mem_mb(32 * 1024)
        .membw_per_req(50.0)
        .net_per_req(8.0)
        .llc_mb(16.0)
        .sensitivity(Sensitivity::new(0.5, 1.2, 1.5, 0.5, 0.4))
        .build();
    ServiceSpec {
        name: "elgg".into(),
        nodes: vec![
            ServiceNode::seq(nginx_php, vec![Call::always(1)]),
            ServiceNode::seq(memcached, vec![Call::sometimes(2, 0.3)]),
            ServiceNode::leaf(mysql),
        ],
        sla_ms: 320.0,
        nominal_maxload_qps: 200.0,
        containers: 8,
    }
}

/// SNMS, the DeathStarBench social-network microservice application,
/// divided into three Servpods as in §5.3.2: frontend (3 microservices),
/// UserService (14) and MediaService (13).
///
/// The frontend fans out to UserService and MediaService in parallel;
/// UserService dominates the critical path (the paper derives
/// contributions 0.295 / 0.14 / 0.565 for media / frontend / user).
pub fn snms() -> ServiceSpec {
    let frontend = ComponentBuilder::new("frontend", 6.0, 0.40)
        .post(3.0, 0.40)
        .workers(24)
        .contention(2.0)
        .knee(0.96)
        .cores(20)
        .mem_mb(16 * 1024)
        .membw_per_req(8.0)
        .net_per_req(48.0)
        .llc_mb(4.0)
        .sensitivity(Sensitivity::new(0.2, 0.3, 0.3, 0.7, 0.6))
        .build();
    let userservice = ComponentBuilder::new("userservice", 22.0, 0.65)
        .workers(16)
        .contention(6.0)
        .knee(0.86)
        .cores(20)
        .mem_mb(48 * 1024)
        .membw_per_req(35.0)
        .net_per_req(16.0)
        .llc_mb(14.0)
        .sensitivity(Sensitivity::new(0.5, 1.2, 1.1, 0.4, 0.6))
        .build();
    let mediaservice = ComponentBuilder::new("mediaservice", 16.0, 0.50)
        .workers(16)
        .contention(4.0)
        .knee(0.92)
        .cores(20)
        .mem_mb(48 * 1024)
        .membw_per_req(45.0)
        .net_per_req(60.0)
        .llc_mb(10.0)
        .sensitivity(Sensitivity::new(0.4, 0.7, 0.8, 0.6, 0.5))
        .build();
    ServiceSpec {
        name: "snms".into(),
        nodes: vec![
            ServiceNode::fan_out(
                frontend,
                vec![Call::sometimes(1, 0.9), Call::sometimes(2, 0.6)],
            ),
            ServiceNode::leaf(userservice),
            ServiceNode::leaf(mediaservice),
        ],
        sla_ms: 380.0,
        nominal_maxload_qps: 1500.0,
        containers: 30,
    }
}

/// All five LC services of the main evaluation (Figures 9-15), in the
/// paper's order.
pub fn evaluation_apps() -> Vec<ServiceSpec> {
    vec![ecommerce(), redis(), solr(), elgg(), elasticsearch()]
}

/// All six LC services including the SNMS microservice case study.
pub fn all_apps() -> Vec<ServiceSpec> {
    let mut v = evaluation_apps();
    v.push(snms());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_validate() {
        for app in all_apps() {
            app.validate().unwrap_or_else(|e| panic!("{}: {e}", app.name));
        }
    }

    #[test]
    fn servpod_counts_match_table1() {
        assert_eq!(ecommerce().len(), 4);
        assert_eq!(redis().len(), 2);
        assert_eq!(solr().len(), 2);
        assert_eq!(elasticsearch().len(), 2);
        assert_eq!(elgg().len(), 3);
        assert_eq!(snms().len(), 3);
    }

    #[test]
    fn table1_slas_and_maxloads() {
        let e = ecommerce();
        assert_eq!(e.sla_ms, 250.0);
        assert_eq!(e.nominal_maxload_qps, 1300.0);
        assert_eq!(e.containers, 16);
        let r = redis();
        assert_eq!(r.sla_ms, 1.15);
        assert_eq!(r.nominal_maxload_qps, 86_000.0);
        assert_eq!(snms().nominal_maxload_qps, 1500.0);
    }

    #[test]
    fn ecommerce_bottleneck_is_mysql() {
        let e = ecommerce();
        assert_eq!(e.nodes[e.bottleneck()].component.name, "mysql");
    }

    #[test]
    fn sim_maxloads_are_simulation_friendly() {
        for app in all_apps() {
            let m = app.sim_maxload_rps();
            assert!(
                (40.0..2_000.0).contains(&m),
                "{}: sim maxload {m} out of range",
                app.name
            );
        }
    }

    #[test]
    fn redis_master_more_sensitive_than_slave() {
        // Figure 2a: Master ≫ Slave under stream-llc(big), stream-dram
        // (big) and CPU-stress.
        let r = redis();
        let master = &r.nodes[0].component.sensitivity;
        let slave = &r.nodes[1].component.sensitivity;
        assert!(master.llc > 4.0 * slave.llc);
        assert!(master.dram > 2.0 * slave.dram);
        assert!(master.cpu > 2.0 * slave.cpu);
    }

    #[test]
    fn mysql_more_dram_sensitive_than_tomcat() {
        // Figure 2b: MySQL ≫ Tomcat for stream-dram(big); Tomcat more
        // DVFS-sensitive.
        let e = ecommerce();
        let tomcat = &e.nodes[1].component.sensitivity;
        let mysql = &e.nodes[3].component.sensitivity;
        assert!(mysql.dram > 2.0 * tomcat.dram);
        assert!(mysql.llc > tomcat.llc);
        assert!(tomcat.freq > mysql.freq);
    }

    #[test]
    fn zookeeper_is_least_sensitive_solr_pod() {
        let s = solr();
        let front = &s.nodes[0].component.sensitivity;
        let zk = &s.nodes[1].component.sensitivity;
        assert!(zk.max_component() < front.max_component());
    }

    #[test]
    fn snms_userservice_dominates() {
        let s = snms();
        let visits = s.expected_visits();
        let user = s.index_of("userservice").unwrap();
        let media = s.index_of("mediaservice").unwrap();
        // UserService carries more expected work per request.
        let work = |i: usize| visits[i] * s.nodes[i].component.mean_work_ms();
        assert!(work(user) > work(media));
    }

    #[test]
    fn fan_out_services_marked_parallel() {
        assert!(redis().nodes[0].parallel);
        assert!(snms().nodes[0].parallel);
        assert!(!ecommerce().nodes[0].parallel);
    }

    #[test]
    fn haproxy_has_high_relative_variance() {
        // Figure 6b: HAProxy's CoV share exceeds 20% despite a <5% sojourn
        // share. Its sigma must be the largest in e-commerce.
        let e = ecommerce();
        let sigma = |i: usize| match e.nodes[i].component.pre_ms {
            rhythm_sim::Dist::LogNormal { sigma, .. } => sigma,
            _ => 0.0,
        };
        assert!(sigma(0) > sigma(1), "haproxy vs tomcat");
        assert!(sigma(0) > sigma(2), "haproxy vs amoeba");
        // MySQL keeps the largest absolute dispersion (Figure 6b's
        // "MySQL's variance is always much larger than Tomcat").
        assert!(sigma(3) > sigma(1), "mysql vs tomcat");
    }

    #[test]
    fn evaluation_apps_order_matches_paper() {
        let names: Vec<String> = evaluation_apps().iter().map(|a| a.name.clone()).collect();
        assert_eq!(
            names,
            vec!["e-commerce", "redis", "solr", "elgg", "elasticsearch"]
        );
    }
}
