//! Best-effort (BE) batch job models.
//!
//! Table 1 lists seven BE jobs: four synthetic single-resource stressors
//! (CPU-stress, stream-llc, stream-dram, iperf) and three real mixed
//! workloads (Wordcount, ImageClassify on CycleGAN, LSTM on TensorFlow).
//! A BE job matters to the co-location controller through exactly two
//! things, both modelled here:
//!
//! 1. **Pressure** — how much contention it puts on each shared resource
//!    per granted core (aggregated machine-wide by `rhythm-interference`).
//! 2. **Progress** — how fast it completes work given its grant, which
//!    yields the paper's normalized *BE throughput* metric (§5.1: jobs
//!    finished per hour normalized to a solo run).

use serde::{Deserialize, Serialize};

/// The BE workload kinds of Table 1 (plus the big/small stream variants
/// used in the §2 characterization).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BeKind {
    /// CPU stress-testing tool; pure core pressure.
    CpuStress,
    /// iBench LLC benchmark; `big` saturates the LLC, otherwise half.
    StreamLlc { big: bool },
    /// iBench DRAM-bandwidth benchmark; `big` saturates, otherwise half.
    StreamDram { big: bool },
    /// Network stress (iperf).
    Iperf,
    /// Big-data analytics (Wordcount); mixed CPU/DRAM pressure.
    Wordcount,
    /// CycleGAN image classification; mixed CPU/LLC/DRAM pressure.
    ImageClassify,
    /// TensorFlow LSTM training; CPU-heavy mixed pressure.
    Lstm,
}

/// Full model of one BE workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BeSpec {
    /// Workload kind.
    pub kind: BeKind,
    /// Display name as used in the paper's figures.
    pub name: String,
    /// Core-contention pressure contributed per granted core (saturates
    /// at 1.0 machine-wide).
    pub cpu_pressure_per_core: f64,
    /// LLC pressure per granted core *before* CAT isolation is applied.
    pub llc_pressure_per_core: f64,
    /// DRAM-bandwidth pressure per granted core.
    pub dram_pressure_per_core: f64,
    /// NIC demand of one instance in Mbit/s (drives network pressure).
    pub net_demand_mbps: f64,
    /// Memory a fresh instance asks for in MB (the paper initializes BE
    /// jobs with 2 GB).
    pub mem_mb: u64,
    /// LLC ways one instance can productively use (cache-starved
    /// instances run slower).
    pub llc_ways_wanted: u32,
    /// Fraction of the job's progress that scales with core frequency
    /// (1.0 = fully compute-bound).
    pub cpu_bound: f64,
    /// Progress penalty at zero cache: progress multiplier is
    /// `1 - cache_penalty * starvation`.
    pub cache_penalty: f64,
    /// Cores a solo run would use on an otherwise idle machine
    /// (normalization basis for throughput).
    pub solo_cores: u32,
    /// Wall-clock seconds one job takes at solo speed.
    pub job_seconds: f64,
}

impl BeSpec {
    /// The model for a given kind, calibrated to the paper's §2/§5
    /// observations (e.g. "CPU-stress generates the least interference",
    /// stream-dram/llc big saturate their resource).
    pub fn of(kind: BeKind) -> BeSpec {
        match kind {
            BeKind::CpuStress => BeSpec {
                kind,
                name: "CPU-stress".into(),
                cpu_pressure_per_core: 0.085,
                llc_pressure_per_core: 0.010,
                dram_pressure_per_core: 0.008,
                net_demand_mbps: 0.0,
                mem_mb: 2048,
                llc_ways_wanted: 2,
                cpu_bound: 1.0,
                cache_penalty: 0.05,
                solo_cores: 24,
                job_seconds: 300.0,
            },
            BeKind::StreamLlc { big } => {
                let scale = if big { 1.0 } else { 0.5 };
                BeSpec {
                    kind,
                    name: if big {
                        "stream-llc".into()
                    } else {
                        "stream-llc(small)".into()
                    },
                    cpu_pressure_per_core: 0.010,
                    llc_pressure_per_core: 0.24 * scale,
                    dram_pressure_per_core: 0.060 * scale,
                    net_demand_mbps: 0.0,
                    mem_mb: 2048,
                    llc_ways_wanted: 8,
                    cpu_bound: 0.30,
                    cache_penalty: 0.10,
                    solo_cores: 8,
                    job_seconds: 240.0,
                }
            }
            BeKind::StreamDram { big } => {
                let scale = if big { 1.0 } else { 0.5 };
                BeSpec {
                    kind,
                    name: if big {
                        "stream-dram".into()
                    } else {
                        "stream-dram(small)".into()
                    },
                    cpu_pressure_per_core: 0.010,
                    llc_pressure_per_core: 0.050 * scale,
                    dram_pressure_per_core: 0.26 * scale,
                    net_demand_mbps: 0.0,
                    mem_mb: 4096,
                    llc_ways_wanted: 2,
                    cpu_bound: 0.25,
                    cache_penalty: 0.05,
                    solo_cores: 8,
                    job_seconds: 240.0,
                }
            }
            BeKind::Iperf => BeSpec {
                kind,
                name: "iperf".into(),
                cpu_pressure_per_core: 0.010,
                llc_pressure_per_core: 0.005,
                dram_pressure_per_core: 0.010,
                net_demand_mbps: 9_000.0,
                mem_mb: 512,
                llc_ways_wanted: 1,
                cpu_bound: 0.20,
                cache_penalty: 0.02,
                solo_cores: 4,
                job_seconds: 120.0,
            },
            BeKind::Wordcount => BeSpec {
                kind,
                name: "wordcount".into(),
                cpu_pressure_per_core: 0.040,
                llc_pressure_per_core: 0.055,
                dram_pressure_per_core: 0.120,
                net_demand_mbps: 200.0,
                mem_mb: 2048,
                llc_ways_wanted: 4,
                cpu_bound: 0.60,
                cache_penalty: 0.15,
                solo_cores: 16,
                job_seconds: 600.0,
            },
            BeKind::ImageClassify => BeSpec {
                kind,
                name: "imageClassify".into(),
                cpu_pressure_per_core: 0.055,
                llc_pressure_per_core: 0.080,
                dram_pressure_per_core: 0.075,
                net_demand_mbps: 50.0,
                mem_mb: 4096,
                llc_ways_wanted: 6,
                cpu_bound: 0.75,
                cache_penalty: 0.25,
                solo_cores: 16,
                job_seconds: 900.0,
            },
            BeKind::Lstm => BeSpec {
                kind,
                name: "LSTM".into(),
                cpu_pressure_per_core: 0.075,
                llc_pressure_per_core: 0.040,
                dram_pressure_per_core: 0.050,
                net_demand_mbps: 20.0,
                mem_mb: 4096,
                llc_ways_wanted: 4,
                cpu_bound: 0.85,
                cache_penalty: 0.20,
                solo_cores: 20,
                job_seconds: 1200.0,
            },
        }
    }

    /// The six BE jobs used in the co-location experiments (Figures 9-16).
    pub fn colocation_set() -> Vec<BeSpec> {
        vec![
            BeSpec::of(BeKind::StreamLlc { big: true }),
            BeSpec::of(BeKind::StreamDram { big: true }),
            BeSpec::of(BeKind::CpuStress),
            BeSpec::of(BeKind::Lstm),
            BeSpec::of(BeKind::ImageClassify),
            BeSpec::of(BeKind::Wordcount),
        ]
    }

    /// The seven interference generators of the §2 characterization
    /// (Figure 2): big/small stream variants, DVFS is applied separately.
    pub fn characterization_set() -> Vec<BeSpec> {
        vec![
            BeSpec::of(BeKind::StreamDram { big: true }),
            BeSpec::of(BeKind::StreamDram { big: false }),
            BeSpec::of(BeKind::StreamLlc { big: true }),
            BeSpec::of(BeKind::StreamLlc { big: false }),
            BeSpec::of(BeKind::CpuStress),
            BeSpec::of(BeKind::Iperf),
        ]
    }

    /// Progress rate of one instance in "solo-machine equivalents": 1.0
    /// means it completes jobs as fast as a solo run on its preferred
    /// `solo_cores`.
    ///
    /// * `cores` — granted cores.
    /// * `freq_fraction` — BE DVFS operating point relative to max.
    /// * `llc_ways` — granted cache ways.
    /// * `net_fraction` — granted network bandwidth relative to demand
    ///   (1.0 when the job's demand is met; only matters for iperf-like
    ///   jobs).
    pub fn progress_rate(
        &self,
        cores: u32,
        freq_fraction: f64,
        llc_ways: u32,
        net_fraction: f64,
    ) -> f64 {
        if cores == 0 {
            return 0.0;
        }
        let core_share = cores as f64 / self.solo_cores as f64;
        let f = freq_fraction.clamp(0.05, 1.0);
        // A `cpu_bound` fraction of the work scales with frequency.
        let freq_factor = self.cpu_bound * f + (1.0 - self.cpu_bound);
        let starvation = if self.llc_ways_wanted == 0 {
            0.0
        } else {
            (1.0 - llc_ways as f64 / self.llc_ways_wanted as f64).clamp(0.0, 1.0)
        };
        let cache_factor = 1.0 - self.cache_penalty * starvation;
        let net_factor = if self.net_demand_mbps > 0.0 {
            net_fraction.clamp(0.0, 1.0).max(0.05)
        } else {
            1.0
        };
        core_share * freq_factor * cache_factor * net_factor
    }

    /// Jobs one instance finishes per hour at the given progress rate.
    pub fn jobs_per_hour(&self, progress_rate: f64) -> f64 {
        progress_rate * 3600.0 / self.job_seconds
    }

    /// Jobs per hour of a solo run (the throughput normalization basis).
    pub fn solo_jobs_per_hour(&self) -> f64 {
        3600.0 / self.job_seconds
    }
}

impl rhythm_snapshot::Snapshot for BeKind {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        let (tag, big) = match self {
            BeKind::CpuStress => (0, false),
            BeKind::StreamLlc { big } => (1, *big),
            BeKind::StreamDram { big } => (2, *big),
            BeKind::Iperf => (3, false),
            BeKind::Wordcount => (4, false),
            BeKind::ImageClassify => (5, false),
            BeKind::Lstm => (6, false),
        };
        w.u8(tag);
        w.bool(big);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        let tag = r.u8()?;
        let big = r.bool()?;
        Ok(match tag {
            0 => BeKind::CpuStress,
            1 => BeKind::StreamLlc { big },
            2 => BeKind::StreamDram { big },
            3 => BeKind::Iperf,
            4 => BeKind::Wordcount,
            5 => BeKind::ImageClassify,
            6 => BeKind::Lstm,
            t => {
                return Err(rhythm_snapshot::SnapshotError::Corrupt(format!(
                    "unknown BeKind tag {t}"
                )))
            }
        })
    }
}

impl rhythm_snapshot::Snapshot for BeSpec {
    fn encode(&self, w: &mut rhythm_snapshot::Writer) {
        self.kind.encode(w);
        w.str(&self.name);
        w.f64(self.cpu_pressure_per_core);
        w.f64(self.llc_pressure_per_core);
        w.f64(self.dram_pressure_per_core);
        w.f64(self.net_demand_mbps);
        w.u64(self.mem_mb);
        w.u32(self.llc_ways_wanted);
        w.f64(self.cpu_bound);
        w.f64(self.cache_penalty);
        w.u32(self.solo_cores);
        w.f64(self.job_seconds);
    }

    fn decode(r: &mut rhythm_snapshot::Reader<'_>) -> Result<Self, rhythm_snapshot::SnapshotError> {
        Ok(BeSpec {
            kind: BeKind::decode(r)?,
            name: r.str()?,
            cpu_pressure_per_core: r.f64()?,
            llc_pressure_per_core: r.f64()?,
            dram_pressure_per_core: r.f64()?,
            net_demand_mbps: r.f64()?,
            mem_mb: r.u64()?,
            llc_ways_wanted: r.u32()?,
            cpu_bound: r.f64()?,
            cache_penalty: r.f64()?,
            solo_cores: r.u32()?,
            job_seconds: r.f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_construct() {
        for kind in [
            BeKind::CpuStress,
            BeKind::StreamLlc { big: true },
            BeKind::StreamLlc { big: false },
            BeKind::StreamDram { big: true },
            BeKind::StreamDram { big: false },
            BeKind::Iperf,
            BeKind::Wordcount,
            BeKind::ImageClassify,
            BeKind::Lstm,
        ] {
            let s = BeSpec::of(kind);
            assert!(!s.name.is_empty());
            assert!(s.solo_cores > 0);
            assert!(s.job_seconds > 0.0);
        }
    }

    #[test]
    fn colocation_set_has_six() {
        assert_eq!(BeSpec::colocation_set().len(), 6);
    }

    #[test]
    fn small_variants_pressure_half_of_big() {
        let big = BeSpec::of(BeKind::StreamDram { big: true });
        let small = BeSpec::of(BeKind::StreamDram { big: false });
        assert!((small.dram_pressure_per_core - big.dram_pressure_per_core / 2.0).abs() < 1e-12);
    }

    #[test]
    fn stream_dram_big_saturates_with_four_cores() {
        let s = BeSpec::of(BeKind::StreamDram { big: true });
        assert!(4.0 * s.dram_pressure_per_core > 1.0);
    }

    #[test]
    fn cpu_stress_interferes_least() {
        // The paper: "CPU-stress generates the least interference" on
        // cache/memory paths.
        let cpu = BeSpec::of(BeKind::CpuStress);
        let llc = BeSpec::of(BeKind::StreamLlc { big: true });
        let dram = BeSpec::of(BeKind::StreamDram { big: true });
        assert!(cpu.llc_pressure_per_core < llc.llc_pressure_per_core);
        assert!(cpu.dram_pressure_per_core < dram.dram_pressure_per_core);
    }

    #[test]
    fn progress_zero_without_cores() {
        let s = BeSpec::of(BeKind::Wordcount);
        assert_eq!(s.progress_rate(0, 1.0, 4, 1.0), 0.0);
    }

    #[test]
    fn progress_scales_with_cores() {
        let s = BeSpec::of(BeKind::CpuStress);
        let one = s.progress_rate(1, 1.0, 2, 1.0);
        let two = s.progress_rate(2, 1.0, 2, 1.0);
        assert!((two / one - 2.0).abs() < 1e-9);
    }

    #[test]
    fn full_grant_runs_at_solo_speed() {
        let s = BeSpec::of(BeKind::Lstm);
        let r = s.progress_rate(s.solo_cores, 1.0, s.llc_ways_wanted, 1.0);
        assert!((r - 1.0).abs() < 1e-9);
        assert!((s.jobs_per_hour(r) - s.solo_jobs_per_hour()).abs() < 1e-9);
    }

    #[test]
    fn frequency_hits_compute_bound_jobs_harder() {
        let cpu = BeSpec::of(BeKind::CpuStress);
        let dram = BeSpec::of(BeKind::StreamDram { big: true });
        let cpu_drop = cpu.progress_rate(4, 0.6, 2, 1.0) / cpu.progress_rate(4, 1.0, 2, 1.0);
        let dram_drop = dram.progress_rate(4, 0.6, 2, 1.0) / dram.progress_rate(4, 1.0, 2, 1.0);
        assert!(cpu_drop < dram_drop, "compute-bound drops more");
    }

    #[test]
    fn cache_starvation_slows_cache_hungry_jobs() {
        let s = BeSpec::of(BeKind::ImageClassify);
        let starved = s.progress_rate(8, 1.0, 0, 1.0);
        let fed = s.progress_rate(8, 1.0, s.llc_ways_wanted, 1.0);
        assert!(starved < fed);
        assert!((fed - starved) / fed > 0.1);
    }

    #[test]
    fn network_starvation_only_hits_network_jobs() {
        let iperf = BeSpec::of(BeKind::Iperf);
        let wc = BeSpec::of(BeKind::CpuStress);
        assert!(iperf.progress_rate(2, 1.0, 1, 0.1) < iperf.progress_rate(2, 1.0, 1, 1.0));
        assert_eq!(wc.progress_rate(2, 1.0, 2, 0.0), wc.progress_rate(2, 1.0, 2, 1.0));
    }
}
