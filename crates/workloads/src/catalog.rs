//! The Table 1 workload inventory.
//!
//! This module renders the paper's Table 1 ("LC workloads and BE jobs")
//! from the actual specs, so the `repro tab1` harness target prints the
//! inventory the rest of the evaluation uses.

use crate::apps;
use crate::be::BeSpec;
use crate::service::ServiceSpec;

/// One LC row of Table 1.
#[derive(Clone, Debug)]
pub struct LcRow {
    /// Workload name.
    pub workload: String,
    /// Application domain.
    pub domain: &'static str,
    /// Servpod (component) names.
    pub servpods: Vec<String>,
    /// Published maximum load (QPS).
    pub maxload_qps: f64,
    /// Published SLA (ms).
    pub sla_ms: f64,
    /// Container count.
    pub containers: u32,
}

/// One BE row of Table 1.
#[derive(Clone, Debug)]
pub struct BeRow {
    /// Workload name.
    pub workload: String,
    /// Application domain.
    pub domain: &'static str,
    /// Which resource the job is intensive on.
    pub intensive: &'static str,
}

fn domain_of(service: &ServiceSpec) -> &'static str {
    match service.name.as_str() {
        "e-commerce" => "TPC-W website",
        "redis" => "Key-value store",
        "solr" => "Search",
        "elasticsearch" => "Index Engine",
        "elgg" => "Social Network",
        "snms" => "Microservice",
        _ => "unknown",
    }
}

/// The LC half of Table 1.
pub fn lc_rows() -> Vec<LcRow> {
    apps::all_apps()
        .into_iter()
        .map(|s| LcRow {
            domain: domain_of(&s),
            servpods: s.component_names().iter().map(|n| n.to_string()).collect(),
            workload: s.name,
            maxload_qps: s.nominal_maxload_qps,
            sla_ms: s.sla_ms,
            containers: s.containers,
        })
        .collect()
}

/// The BE half of Table 1.
pub fn be_rows() -> Vec<BeRow> {
    use crate::be::BeKind;
    let intensive = |k: &BeKind| match k {
        BeKind::CpuStress => "CPU",
        BeKind::StreamLlc { .. } => "LLC",
        BeKind::StreamDram { .. } => "DRAM",
        BeKind::Iperf => "Network",
        BeKind::Wordcount | BeKind::ImageClassify | BeKind::Lstm => "mixed",
    };
    let domain = |k: &BeKind| match k {
        BeKind::CpuStress => "CPU stress testing tool",
        BeKind::StreamLlc { .. } => "LLC-benchmark in iBench",
        BeKind::StreamDram { .. } => "DRAM-benchmark in iBench",
        BeKind::Iperf => "Network stress testing tool",
        BeKind::Wordcount => "Big data analytics",
        BeKind::ImageClassify => "Image classification on CycleGAN",
        BeKind::Lstm => "Deep learning on Tensorflow",
    };
    let mut rows: Vec<BeRow> = vec![
        BeKind::CpuStress,
        BeKind::StreamLlc { big: true },
        BeKind::StreamDram { big: true },
        BeKind::Iperf,
        BeKind::Wordcount,
        BeKind::ImageClassify,
        BeKind::Lstm,
    ]
    .into_iter()
    .map(|k| BeRow {
        workload: BeSpec::of(k).name,
        domain: domain(&k),
        intensive: intensive(&k),
    })
    .collect();
    rows.sort_by(|a, b| a.workload.cmp(&b.workload));
    rows
}

/// Renders Table 1 as aligned text.
pub fn render_table1() -> String {
    let mut out = String::new();
    out.push_str("LC Workloads\n");
    out.push_str(&format!(
        "{:<14} {:<22} {:<40} {:>12} {:>9} {:>11}\n",
        "Workload", "Domain", "Servpods", "MaxLoad", "SLA", "Containers"
    ));
    for r in lc_rows() {
        out.push_str(&format!(
            "{:<14} {:<22} {:<40} {:>9} QPS {:>6} ms {:>11}\n",
            r.workload,
            r.domain,
            r.servpods.join(","),
            r.maxload_qps,
            r.sla_ms,
            r.containers
        ));
    }
    out.push_str("\nBE Jobs\n");
    out.push_str(&format!(
        "{:<16} {:<36} {:<10}\n",
        "Workload", "Domain", "-intensive"
    ));
    for r in be_rows() {
        out.push_str(&format!(
            "{:<16} {:<36} {:<10}\n",
            r.workload, r.domain, r.intensive
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_lc_rows() {
        let rows = lc_rows();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().any(|r| r.workload == "e-commerce"));
        assert!(rows.iter().any(|r| r.workload == "snms"));
    }

    #[test]
    fn seven_be_rows() {
        assert_eq!(be_rows().len(), 7);
    }

    #[test]
    fn domains_follow_table1() {
        let rows = lc_rows();
        let ec = rows.iter().find(|r| r.workload == "e-commerce").unwrap();
        assert_eq!(ec.domain, "TPC-W website");
        assert_eq!(ec.servpods.len(), 4);
        assert_eq!(ec.containers, 16);
    }

    #[test]
    fn render_mentions_everything() {
        let t = render_table1();
        for name in [
            "e-commerce",
            "redis",
            "solr",
            "elasticsearch",
            "elgg",
            "snms",
            "CPU-stress",
            "stream-llc",
            "stream-dram",
            "iperf",
            "wordcount",
            "imageClassify",
            "LSTM",
        ] {
            assert!(t.contains(name), "table missing {name}");
        }
    }
}
