//! One latency-critical service component.
//!
//! A component (HAProxy, Tomcat, MySQL, a Redis master, ...) is modelled
//! as a multi-server queue: `workers` parallel request slots, each request
//! visit consuming a sampled amount of work split into a *pre* phase
//! (before any downstream call) and a *post* phase (after the downstream
//! reply). The sojourn time the paper's tracer extracts (§3.3, Figure 5)
//! is exactly `pre + post` plus queueing delay — local residence time,
//! excluding time spent waiting for downstream components.

use crate::sensitivity::Sensitivity;
use rhythm_sim::Dist;
use serde::{Deserialize, Serialize};

/// Specification of one LC component.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ComponentSpec {
    /// Component name (unique within its service).
    pub name: String,
    /// Parallel request slots (threads/connections the container serves).
    pub workers: u32,
    /// Work before the downstream call, in ms.
    pub pre_ms: Dist,
    /// Work after the downstream reply, in ms (zero-mass for components
    /// that reply immediately after their downstream finishes).
    pub post_ms: Dist,
    /// Interference sensitivity (calibrated to the paper's Figure 2).
    pub sensitivity: Sensitivity,
    /// Cores the component's Servpod reserves on its machine.
    pub cores: u32,
    /// Resident memory of the component in MB.
    pub mem_mb: u64,
    /// DRAM traffic per request in MB (drives memory-bandwidth usage).
    pub membw_mb_per_req: f64,
    /// Network traffic per request in KB (request + reply).
    pub net_kb_per_req: f64,
    /// LLC working-set in MB (how much cache the component wants).
    pub llc_mb: f64,
    /// Load-contention factor γ: service times inflate by `1 + γ·f³` at
    /// offered load fraction `f`, modelling the lock/pool/GC contention
    /// that makes real components degrade well before their worker pools
    /// saturate (the paper's Figure 6a sojourn growth).
    pub contention: f64,
    /// Burst knee: the load fraction around which the component's
    /// sojourn-time fluctuation blows up (Figure 8). Rare large service
    /// bursts (GC pauses, compactions, lock convoys) start appearing
    /// ~0.15 of load before the knee and reach full probability at it.
    pub burst_knee: f64,
}

impl ComponentSpec {
    /// Mean local work per visit in ms (pre + post, no queueing).
    pub fn mean_work_ms(&self) -> f64 {
        self.pre_ms.mean() + self.post_ms.mean()
    }

    /// Capacity of the component in requests/second at full load: how
    /// many visits per second its worker pool can absorb once the
    /// full-load contention inflation `1 + γ` applies.
    pub fn capacity_rps(&self) -> f64 {
        let work_s = self.mean_work_ms() * (1.0 + self.contention) / 1e3;
        if work_s <= 0.0 {
            f64::INFINITY
        } else {
            self.workers as f64 / work_s
        }
    }

    /// The load-contention service-time multiplier at offered load
    /// fraction `f` (clamped to `[0, 1.05]`): `1 + γ·f³`.
    pub fn contention_factor(&self, f: f64) -> f64 {
        let f = f.clamp(0.0, 1.05);
        1.0 + self.contention * f * f * f
    }

    /// Probability that one request visit hits a service burst at load
    /// fraction `f`: zero below `burst_knee − 0.08`, ramping linearly to
    /// 2% slightly past the knee. The bursts make the sojourn-time CoV
    /// rise sharply around the knee — the signal the loadlimit detector
    /// reads (Figure 8).
    pub fn burst_probability(&self, f: f64) -> f64 {
        let onset = self.burst_knee - 0.08;
        0.02 * ((f - onset) / 0.1).clamp(0.0, 1.0)
    }

    /// DRAM bandwidth demand in MB/s at the given request rate.
    pub fn membw_mbps_at(&self, rps: f64) -> f64 {
        self.membw_mb_per_req * rps.max(0.0)
    }

    /// Network demand in Mbit/s at the given request rate.
    pub fn net_mbps_at(&self, rps: f64) -> f64 {
        self.net_kb_per_req * 8.0 / 1e3 * rps.max(0.0)
    }

    /// Validates the specification.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("component name must not be empty".into());
        }
        if self.workers == 0 {
            return Err(format!("component {}: zero workers", self.name));
        }
        if self.cores == 0 {
            return Err(format!("component {}: zero cores", self.name));
        }
        if self.mean_work_ms() <= 0.0 {
            return Err(format!("component {}: zero mean work", self.name));
        }
        Ok(())
    }
}

/// Builder for [`ComponentSpec`] with sane defaults, used by the app
/// constructors.
#[derive(Clone, Debug)]
pub struct ComponentBuilder {
    spec: ComponentSpec,
}

impl ComponentBuilder {
    /// Starts a component with the given name and log-normal pre-phase
    /// work (median `pre_median_ms`, shape `pre_sigma`).
    pub fn new(name: &str, pre_median_ms: f64, pre_sigma: f64) -> Self {
        ComponentBuilder {
            spec: ComponentSpec {
                name: name.to_string(),
                workers: 8,
                pre_ms: Dist::LogNormal {
                    median: pre_median_ms,
                    sigma: pre_sigma,
                },
                post_ms: Dist::constant(0.0),
                sensitivity: Sensitivity::zero(),
                cores: 8,
                mem_mb: 8 * 1024,
                membw_mb_per_req: 1.0,
                net_kb_per_req: 4.0,
                llc_mb: 4.0,
                contention: 2.0,
                burst_knee: 0.85,
            },
        }
    }

    /// Sets the post-phase work distribution.
    pub fn post(mut self, median_ms: f64, sigma: f64) -> Self {
        self.spec.post_ms = Dist::LogNormal {
            median: median_ms,
            sigma,
        };
        self
    }

    /// Sets the worker count.
    pub fn workers(mut self, w: u32) -> Self {
        self.spec.workers = w;
        self
    }

    /// Sets the Servpod core reservation.
    pub fn cores(mut self, c: u32) -> Self {
        self.spec.cores = c;
        self
    }

    /// Sets the interference sensitivity.
    pub fn sensitivity(mut self, s: Sensitivity) -> Self {
        self.spec.sensitivity = s;
        self
    }

    /// Sets the resident memory in MB.
    pub fn mem_mb(mut self, mb: u64) -> Self {
        self.spec.mem_mb = mb;
        self
    }

    /// Sets the DRAM traffic per request in MB.
    pub fn membw_per_req(mut self, mb: f64) -> Self {
        self.spec.membw_mb_per_req = mb;
        self
    }

    /// Sets the network traffic per request in KB.
    pub fn net_per_req(mut self, kb: f64) -> Self {
        self.spec.net_kb_per_req = kb;
        self
    }

    /// Sets the LLC working-set in MB.
    pub fn llc_mb(mut self, mb: f64) -> Self {
        self.spec.llc_mb = mb;
        self
    }

    /// Sets the load-contention factor γ.
    pub fn contention(mut self, gamma: f64) -> Self {
        self.spec.contention = gamma.max(0.0);
        self
    }

    /// Sets the burst knee (the Figure 8 fluctuation onset).
    pub fn knee(mut self, k: f64) -> Self {
        self.spec.burst_knee = k.clamp(0.2, 1.0);
        self
    }

    /// Finishes the component.
    ///
    /// # Panics
    ///
    /// Panics if the resulting spec is invalid (components are built from
    /// static app constructors, so this is a programming error).
    pub fn build(self) -> ComponentSpec {
        self.spec.validate().expect("invalid component spec");
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_validate() {
        let c = ComponentBuilder::new("tomcat", 10.0, 0.4).build();
        assert_eq!(c.name, "tomcat");
        assert!(c.validate().is_ok());
        assert!(c.mean_work_ms() > 0.0);
    }

    #[test]
    fn capacity_is_workers_over_contended_work() {
        let c = ComponentBuilder::new("x", 10.0, 0.0)
            .workers(5)
            .contention(2.0)
            .build();
        // LogNormal sigma=0 -> mean = median = 10 ms; full-load work is
        // 30 ms; 5 workers / 0.03 s.
        assert!((c.capacity_rps() - 5.0 / 0.03).abs() < 1e-6);
    }

    #[test]
    fn contention_factor_shape() {
        let c = ComponentBuilder::new("x", 1.0, 0.0).contention(6.0).build();
        assert_eq!(c.contention_factor(0.0), 1.0);
        assert!((c.contention_factor(1.0) - 7.0).abs() < 1e-12);
        assert!(c.contention_factor(0.5) < c.contention_factor(0.9));
        // Clamped above 1.05.
        assert_eq!(c.contention_factor(5.0), c.contention_factor(1.05));
    }

    #[test]
    fn burst_probability_ramps_at_knee() {
        let c = ComponentBuilder::new("x", 1.0, 0.0).knee(0.8).build();
        assert_eq!(c.burst_probability(0.3), 0.0);
        assert_eq!(c.burst_probability(0.70), 0.0);
        let mid = c.burst_probability(0.77);
        assert!(mid > 0.0 && mid < 0.02, "mid-ramp {mid}");
        assert_eq!(c.burst_probability(0.85), 0.02);
        assert_eq!(c.burst_probability(1.0), 0.02);
    }

    #[test]
    fn earlier_knee_bursts_earlier() {
        let early = ComponentBuilder::new("x", 1.0, 0.0).knee(0.76).build();
        let late = ComponentBuilder::new("x", 1.0, 0.0).knee(0.9).build();
        assert!(early.burst_probability(0.72) > late.burst_probability(0.72));
    }

    #[test]
    fn zero_contention_never_inflates() {
        let c = ComponentBuilder::new("x", 1.0, 0.0).contention(0.0).build();
        assert_eq!(c.contention_factor(0.9), 1.0);
    }

    #[test]
    fn post_phase_adds_work() {
        let a = ComponentBuilder::new("x", 10.0, 0.0).build();
        let b = ComponentBuilder::new("x", 10.0, 0.0).post(5.0, 0.0).build();
        assert!(b.mean_work_ms() > a.mean_work_ms());
    }

    #[test]
    fn bandwidth_scales_with_rate() {
        let c = ComponentBuilder::new("x", 1.0, 0.0)
            .membw_per_req(2.0)
            .net_per_req(10.0)
            .build();
        assert_eq!(c.membw_mbps_at(100.0), 200.0);
        assert!((c.net_mbps_at(100.0) - 8.0).abs() < 1e-9);
        assert_eq!(c.membw_mbps_at(-5.0), 0.0);
    }

    #[test]
    fn validation_catches_errors() {
        let mut c = ComponentBuilder::new("x", 1.0, 0.1).build();
        c.workers = 0;
        assert!(c.validate().is_err());
        let mut c = ComponentBuilder::new("x", 1.0, 0.1).build();
        c.name.clear();
        assert!(c.validate().is_err());
        let mut c = ComponentBuilder::new("x", 1.0, 0.1).build();
        c.cores = 0;
        assert!(c.validate().is_err());
    }
}
