//! Workload models for the Rhythm reproduction.
//!
//! The paper evaluates Rhythm on six latency-critical (LC) services and
//! seven best-effort (BE) jobs (Table 1). Running the real applications
//! needs a cluster, so this crate models each LC service as a queueing
//! network over its published component DAG, and each BE job as a
//! resource-pressure/progress model. The calibration targets are the
//! paper's own measurements: the load→latency curves of Figure 6, the
//! per-component interference sensitivities of Figure 2, and the MaxLoad /
//! SLA values of Table 1.
//!
//! * [`sensitivity`] — per-resource interference sensitivity of one LC
//!   component.
//! * [`component`] — one LC component (workers, service-time phases,
//!   footprint).
//! * [`service`] — an LC service: a DAG of components with call patterns,
//!   plus derived capacity.
//! * [`apps`] — constructors for the six LC services of Table 1.
//! * [`be`] — the seven BE jobs of Table 1 (pressure + progress models).
//! * [`loadgen`] — constant and ClarkNet-like production load generators.
//! * [`catalog`] — the Table 1 inventory, used by the harness.
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

pub mod apps;
pub mod be;
pub mod catalog;
pub mod component;
pub mod loadgen;
pub mod sensitivity;
pub mod service;

/// Layout description of every [`rhythm_snapshot::Snapshot`] impl in this
/// crate. Hashed into snapshot files; **bump the text whenever an encoding
/// here changes shape** so stale snapshots are refused instead of
/// misdecoded.
pub const SNAPSHOT_SCHEMA: &str = "rhythm-workloads/v1: \
     BeKind=(tag:u8,big:bool) \
     BeSpec=(kind,name:str,cpu_p:f64,llc_p:f64,dram_p:f64,net:f64,mem_mb:u64,\
     ways_wanted:u32,cpu_bound:f64,cache_penalty:f64,solo_cores:u32,job_seconds:f64)";

pub use be::{BeKind, BeSpec};
pub use component::ComponentSpec;
pub use loadgen::LoadGen;
pub use sensitivity::Sensitivity;
pub use service::{Call, ServiceNode, ServiceSpec};
