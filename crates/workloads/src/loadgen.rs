//! Load generators: constant load and a ClarkNet-like production trace.
//!
//! The paper evaluates under constant loads of 5-85% of MaxLoad (§5.2) and
//! under a production trace from ClarkNet with clear 24-hour periodicity,
//! scaled from five days down to six hours (§5.3). The original archive
//! trace is not redistributable, so [`LoadGen::clarknet_like`] synthesizes
//! a load curve with the same structure: diurnal periodicity, day-to-day
//! variation, short bursts, and multiplicative noise.

use rhythm_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// A time-varying offered load, expressed as a fraction of the service's
/// maximum load.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum LoadGen {
    /// A fixed fraction of max load.
    Constant {
        /// Offered load fraction in `[0, 1]` (may slightly exceed 1 to
        /// model overload).
        fraction: f64,
    },
    /// A piecewise-constant trace: `samples[i]` applies during interval
    /// `i` of length `interval`; the trace repeats after it ends.
    Trace {
        /// Load fraction per interval.
        samples: Vec<f64>,
        /// Interval length.
        interval: SimDuration,
    },
}

impl LoadGen {
    /// A constant load at `fraction` of max load.
    pub fn constant(fraction: f64) -> Self {
        LoadGen::Constant {
            fraction: fraction.max(0.0),
        }
    }

    /// Synthesizes a ClarkNet-like trace.
    ///
    /// * `days` — number of simulated "days" of periodicity.
    /// * `total` — wall duration the trace is scaled into (the paper
    ///   scales 5 days into 6 hours; any compression works).
    /// * `intervals` — number of piecewise-constant steps.
    /// * `peak` — load fraction at the diurnal peak.
    ///
    /// The curve is `base + amplitude * diurnal(t)` with per-day amplitude
    /// jitter, occasional 2-interval bursts, and 5% multiplicative noise,
    /// clamped to `[0.05, 1.0]`.
    pub fn clarknet_like(days: u32, total: SimDuration, intervals: usize, peak: f64, seed: u64) -> Self {
        assert!(days > 0 && intervals > 0, "need at least one day/interval");
        let mut rng = SimRng::from_seed(seed).split("clarknet");
        let peak = peak.clamp(0.1, 1.0);
        let base = 0.25 * peak;
        let mut samples = Vec::with_capacity(intervals);
        // Per-day peak jitter (production days differ by ~±15%).
        let day_jitter: Vec<f64> = (0..days).map(|_| rng.uniform_range(0.85, 1.15)).collect();
        for i in 0..intervals {
            let frac = i as f64 / intervals as f64;
            let day = ((frac * days as f64) as usize).min(days as usize - 1);
            let phase = frac * days as f64 * std::f64::consts::TAU;
            // Diurnal shape: deep trough at "night", broad daytime peak.
            let diurnal = 0.5 * (1.0 - phase.cos());
            let mut v = base + (peak - base) * diurnal.powf(1.3) * day_jitter[day];
            // Short bursts: ~3% of intervals spike toward the peak.
            if rng.chance(0.03) {
                v = (v + 0.35 * peak).min(peak * 1.05);
            }
            // Multiplicative noise.
            v *= rng.uniform_range(0.95, 1.05);
            samples.push(v.clamp(0.05, 1.0));
        }
        let interval = SimDuration::from_nanos((total.as_nanos() / intervals as u64).max(1));
        LoadGen::Trace { samples, interval }
    }

    /// Synthesizes a clean diurnal sinusoid-plus-noise curve, the
    /// trace shape of the Alibaba characterization studies (arXiv
    /// 1808.02919): load oscillates between `trough` and `peak` with
    /// `days` full cycles over `total`, with multiplicative noise of
    /// relative width `noise` (e.g. 0.05 = ±5%) drawn from the
    /// deterministic sim RNG. Unlike [`LoadGen::clarknet_like`] there
    /// are no bursts and no per-day jitter, so chaos scenarios can
    /// overlay their own anomalies (see
    /// [`LoadGen::with_flash_crowd`]) on a known-smooth baseline.
    pub fn diurnal(
        days: u32,
        total: SimDuration,
        intervals: usize,
        trough: f64,
        peak: f64,
        noise: f64,
        seed: u64,
    ) -> Self {
        assert!(days > 0 && intervals > 0, "need at least one day/interval");
        assert!(trough <= peak, "trough {trough} above peak {peak}");
        let mut rng = SimRng::from_seed(seed).split("diurnal");
        let trough = trough.clamp(0.02, 1.0);
        let peak = peak.clamp(trough, 1.0);
        let noise = noise.clamp(0.0, 0.5);
        let mid = 0.5 * (trough + peak);
        let amp = 0.5 * (peak - trough);
        let mut samples = Vec::with_capacity(intervals);
        for i in 0..intervals {
            let phase = i as f64 / intervals as f64 * days as f64 * std::f64::consts::TAU;
            // Trough at t=0 ("night"), peak mid-cycle.
            let mut v = mid - amp * phase.cos();
            v *= rng.uniform_range(1.0 - noise, 1.0 + noise);
            samples.push(v.clamp(0.02, 1.0));
        }
        let interval = SimDuration::from_nanos((total.as_nanos() / intervals as u64).max(1));
        LoadGen::Trace { samples, interval }
    }

    /// Overlays a flash crowd on a trace: a sudden multiplicative
    /// spike of `magnitude` (e.g. 1.8 = +80% traffic) starting at
    /// fraction `start_frac` of the cycle, ramping linearly back to
    /// the underlying curve over `ramp_intervals` steps. Values cap at
    /// [`LoadGen::OVERLOAD_CAP`] — flash crowds are exactly the moments
    /// a service is pushed past its planned capacity. A no-op on
    /// constant load (no cycle to anchor the spike to).
    pub fn with_flash_crowd(
        mut self,
        start_frac: f64,
        magnitude: f64,
        ramp_intervals: usize,
    ) -> LoadGen {
        if let LoadGen::Trace { samples, .. } = &mut self {
            let n = samples.len();
            if n > 0 && magnitude > 1.0 {
                let start = ((start_frac.clamp(0.0, 1.0) * n as f64) as usize).min(n - 1);
                let ramp = ramp_intervals.max(1);
                for k in 0..=ramp {
                    let Some(slot) = samples.get_mut(start + k) else {
                        break;
                    };
                    // Full magnitude at the spike front, back to 1× at
                    // the end of the ramp.
                    let m = 1.0 + (magnitude - 1.0) * (1.0 - k as f64 / ramp as f64);
                    *slot = (*slot * m).min(Self::OVERLOAD_CAP);
                }
            }
        }
        self
    }

    /// The ceiling [`LoadGen::with_flash_crowd`] may push load to:
    /// modest overload past MaxLoad, the regime flash-crowd scenarios
    /// exist to probe.
    pub const OVERLOAD_CAP: f64 = 1.2;

    /// The load fraction at virtual time `t`.
    pub fn fraction_at(&self, t: SimTime) -> f64 {
        match self {
            LoadGen::Constant { fraction } => *fraction,
            LoadGen::Trace { samples, interval } => {
                if samples.is_empty() {
                    return 0.0;
                }
                let idx = (t.as_nanos() / interval.as_nanos()) as usize % samples.len();
                samples[idx]
            }
        }
    }

    /// The maximum fraction the generator will ever produce.
    pub fn peak_fraction(&self) -> f64 {
        match self {
            LoadGen::Constant { fraction } => *fraction,
            LoadGen::Trace { samples, .. } => samples.iter().copied().fold(0.0, f64::max),
        }
    }

    /// Mean fraction over one full cycle of the generator.
    pub fn mean_fraction(&self) -> f64 {
        match self {
            LoadGen::Constant { fraction } => *fraction,
            LoadGen::Trace { samples, .. } => {
                if samples.is_empty() {
                    0.0
                } else {
                    samples.iter().sum::<f64>() / samples.len() as f64
                }
            }
        }
    }

    /// Total duration of one trace cycle (`None` for constant load).
    pub fn cycle(&self) -> Option<SimDuration> {
        match self {
            LoadGen::Constant { .. } => None,
            LoadGen::Trace { samples, interval } => Some(SimDuration::from_nanos(
                interval.as_nanos() * samples.len() as u64,
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let g = LoadGen::constant(0.6);
        assert_eq!(g.fraction_at(SimTime::ZERO), 0.6);
        assert_eq!(g.fraction_at(SimTime::from_secs(1_000_000)), 0.6);
        assert_eq!(g.peak_fraction(), 0.6);
        assert_eq!(g.mean_fraction(), 0.6);
        assert!(g.cycle().is_none());
    }

    #[test]
    fn constant_clamps_negative() {
        assert_eq!(LoadGen::constant(-1.0).fraction_at(SimTime::ZERO), 0.0);
    }

    #[test]
    fn trace_indexes_by_interval() {
        let g = LoadGen::Trace {
            samples: vec![0.1, 0.5, 0.9],
            interval: SimDuration::from_secs(10),
        };
        assert_eq!(g.fraction_at(SimTime::from_secs(0)), 0.1);
        assert_eq!(g.fraction_at(SimTime::from_secs(15)), 0.5);
        assert_eq!(g.fraction_at(SimTime::from_secs(29)), 0.9);
        // Wraps around.
        assert_eq!(g.fraction_at(SimTime::from_secs(30)), 0.1);
        assert_eq!(g.cycle(), Some(SimDuration::from_secs(30)));
    }

    #[test]
    fn clarknet_structure() {
        let total = SimDuration::from_secs(6 * 3600);
        let g = LoadGen::clarknet_like(5, total, 720, 0.9, 42);
        // Bounded.
        if let LoadGen::Trace { ref samples, .. } = g {
            assert_eq!(samples.len(), 720);
            for &s in samples {
                assert!((0.05..=1.0).contains(&s), "s={s}");
            }
        } else {
            panic!("expected trace");
        }
        // Clear dynamic range: peak well above trough.
        assert!(g.peak_fraction() > 0.7);
        let trough = match &g {
            LoadGen::Trace { samples, .. } => samples.iter().copied().fold(1.0, f64::min),
            _ => unreachable!(),
        };
        assert!(trough < 0.35, "trough={trough}");
    }

    #[test]
    fn clarknet_is_deterministic() {
        let total = SimDuration::from_secs(1000);
        let a = LoadGen::clarknet_like(2, total, 100, 0.9, 7);
        let b = LoadGen::clarknet_like(2, total, 100, 0.9, 7);
        assert_eq!(
            a.fraction_at(SimTime::from_secs(123)),
            b.fraction_at(SimTime::from_secs(123))
        );
    }

    #[test]
    fn clarknet_periodicity() {
        // With 5 days in the trace, samples one "day" apart should
        // correlate strongly.
        let total = SimDuration::from_secs(5 * 1000);
        let g = LoadGen::clarknet_like(5, total, 500, 0.9, 11);
        if let LoadGen::Trace { ref samples, .. } = g {
            let day = 100;
            let xs: Vec<f64> = samples[..samples.len() - day].to_vec();
            let ys: Vec<f64> = samples[day..].to_vec();
            let r = rhythm_sim::pearson(&xs, &ys);
            assert!(r > 0.7, "diurnal correlation r={r}");
        }
    }

    #[test]
    fn diurnal_is_deterministic_and_bounded() {
        let total = SimDuration::from_secs(4 * 1000);
        let a = LoadGen::diurnal(4, total, 400, 0.2, 0.9, 0.05, 13);
        let b = LoadGen::diurnal(4, total, 400, 0.2, 0.9, 0.05, 13);
        let (LoadGen::Trace { samples: sa, .. }, LoadGen::Trace { samples: sb, .. }) = (&a, &b)
        else {
            panic!("expected traces");
        };
        assert_eq!(sa, sb);
        for &s in sa {
            assert!((0.02..=1.0).contains(&s), "s={s}");
        }
        // Different seed, different noise realization.
        let c = LoadGen::diurnal(4, total, 400, 0.2, 0.9, 0.05, 14);
        let LoadGen::Trace { samples: sc, .. } = &c else {
            panic!("expected trace");
        };
        assert_ne!(sa, sc);
    }

    #[test]
    fn diurnal_periodicity_and_range() {
        let total = SimDuration::from_secs(4 * 1000);
        let g = LoadGen::diurnal(4, total, 400, 0.2, 0.9, 0.05, 13);
        let LoadGen::Trace { ref samples, .. } = g else {
            panic!("expected trace");
        };
        // Samples one "day" apart correlate strongly.
        let day = 100;
        let xs: Vec<f64> = samples[..samples.len() - day].to_vec();
        let ys: Vec<f64> = samples[day..].to_vec();
        let r = rhythm_sim::pearson(&xs, &ys);
        assert!(r > 0.9, "diurnal correlation r={r}");
        // Covers (roughly) the requested trough..peak band.
        assert!(g.peak_fraction() > 0.8);
        let trough = samples.iter().copied().fold(1.0, f64::min);
        assert!(trough < 0.3, "trough={trough}");
    }

    #[test]
    fn flash_crowd_spikes_then_ramps_down() {
        let total = SimDuration::from_secs(1000);
        let base = LoadGen::diurnal(1, total, 100, 0.3, 0.5, 0.0, 1);
        let LoadGen::Trace {
            samples: ref before,
            ..
        } = base
        else {
            panic!("expected trace");
        };
        let before = before.clone();
        let spiked = base.clone().with_flash_crowd(0.5, 1.8, 10);
        let LoadGen::Trace { ref samples, .. } = spiked else {
            panic!("expected trace");
        };
        // Untouched before the spike.
        assert_eq!(&samples[..50], &before[..50]);
        // Spike front is magnified (or capped at the overload ceiling).
        let want = (before[50] * 1.8).min(LoadGen::OVERLOAD_CAP);
        assert!((samples[50] - want).abs() < 1e-12, "front={}", samples[50]);
        assert!(samples[50] > before[50]);
        // Multiplier decays monotonically back to 1× across the ramp.
        for k in 50..60 {
            let m0 = samples[k] / before[k];
            let m1 = samples[k + 1] / before[k + 1];
            assert!(m1 <= m0 + 1e-12, "ramp not monotone at {k}");
        }
        assert!((samples[60] - before[60]).abs() < 1e-12);
        assert_eq!(&samples[61..], &before[61..]);
        // Determinism composes: same base + same overlay = same trace.
        let again = LoadGen::diurnal(1, total, 100, 0.3, 0.5, 0.0, 1).with_flash_crowd(0.5, 1.8, 10);
        let LoadGen::Trace { samples: s2, .. } = again else {
            panic!("expected trace");
        };
        assert_eq!(samples, &s2);
    }

    #[test]
    fn flash_crowd_noop_on_constant_and_clamps() {
        let g = LoadGen::constant(0.5).with_flash_crowd(0.2, 2.0, 5);
        assert_eq!(g.fraction_at(SimTime::ZERO), 0.5);
        // Magnitude <= 1 is a no-op on traces too.
        let total = SimDuration::from_secs(100);
        let base = LoadGen::diurnal(1, total, 10, 0.4, 0.6, 0.0, 2);
        let same = base.clone().with_flash_crowd(0.0, 1.0, 3);
        let (LoadGen::Trace { samples: a, .. }, LoadGen::Trace { samples: b, .. }) = (&base, &same)
        else {
            panic!("expected traces");
        };
        assert_eq!(a, b);
        // Heavy spikes never exceed the overload cap.
        let spiked = base.with_flash_crowd(0.9, 10.0, 3);
        assert!(spiked.peak_fraction() <= LoadGen::OVERLOAD_CAP);
    }

    #[test]
    fn empty_trace_is_zero() {
        let g = LoadGen::Trace {
            samples: vec![],
            interval: SimDuration::from_secs(1),
        };
        assert_eq!(g.fraction_at(SimTime::from_secs(5)), 0.0);
        assert_eq!(g.mean_fraction(), 0.0);
    }
}
