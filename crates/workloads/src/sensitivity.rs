//! Per-resource interference sensitivity of an LC component.
//!
//! Section 2 of the paper measures how each component's 99th-percentile
//! latency inflates when co-located with microbenchmarks that pressure one
//! shared resource. A [`Sensitivity`] captures that response: the
//! service-time inflation factor the component experiences at *full*
//! pressure on each resource. The interference model multiplies these by
//! the actual (partial) pressure present on the machine.

use serde::{Deserialize, Serialize};

/// Interference sensitivity of one component.
///
/// Each field is the fractional service-time inflation at full pressure on
/// that resource: `0.5` means service times grow by 50% when the resource
/// is fully contended. Queueing then amplifies service-time inflation into
/// much larger tail-latency inflation, matching the paper's log-scale
/// Figure 2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Sensitivity {
    /// Core/scheduler contention (CPU-stress on sibling cores).
    pub cpu: f64,
    /// Last-level-cache pollution (stream-llc).
    pub llc: f64,
    /// DRAM bandwidth contention (stream-dram).
    pub dram: f64,
    /// NIC bandwidth contention (iperf).
    pub net: f64,
    /// Frequency scaling: extra slowdown beyond the linear `f_max/f`
    /// factor when the core is downclocked (memory-bound components are
    /// *less* frequency sensitive; compute-bound ones more).
    pub freq: f64,
}

impl Sensitivity {
    /// A component insensitive to everything.
    pub const fn zero() -> Self {
        Sensitivity {
            cpu: 0.0,
            llc: 0.0,
            dram: 0.0,
            net: 0.0,
            freq: 0.0,
        }
    }

    /// Builds a sensitivity vector; values are clamped to be non-negative.
    pub fn new(cpu: f64, llc: f64, dram: f64, net: f64, freq: f64) -> Self {
        Sensitivity {
            cpu: cpu.max(0.0),
            llc: llc.max(0.0),
            dram: dram.max(0.0),
            net: net.max(0.0),
            freq: freq.max(0.0),
        }
    }

    /// The service-time inflation factor (>= 1) under the given pressure
    /// levels, each in `[0, 1]`.
    ///
    /// Inflations from different resources compound multiplicatively: a
    /// component starved of both cache and memory bandwidth is slower than
    /// the sum of the individual effects, which matches the super-additive
    /// behaviour of real co-location studies.
    pub fn inflation(&self, cpu: f64, llc: f64, dram: f64, net: f64) -> f64 {
        let term = |s: f64, p: f64| 1.0 + s * p.clamp(0.0, 1.0);
        term(self.cpu, cpu) * term(self.llc, llc) * term(self.dram, dram) * term(self.net, net)
    }

    /// The additional slowdown factor when running at `freq_fraction` of
    /// maximum frequency (1.0 = full speed → factor 1.0).
    ///
    /// The linear part `1/f` models lost cycles; the `freq` sensitivity
    /// scales how much of the component's work is actually frequency
    /// bound.
    pub fn freq_slowdown(&self, freq_fraction: f64) -> f64 {
        let f = freq_fraction.clamp(0.05, 1.0);
        // A fraction `freq` of the work scales with 1/f; the rest is
        // memory/IO time that does not.
        let bound = self.freq.clamp(0.0, 1.0);
        bound / f + (1.0 - bound)
    }

    /// The largest single-resource sensitivity (used for reporting).
    pub fn max_component(&self) -> f64 {
        self.cpu.max(self.llc).max(self.dram).max(self.net)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sensitivity_never_inflates() {
        let s = Sensitivity::zero();
        assert_eq!(s.inflation(1.0, 1.0, 1.0, 1.0), 1.0);
        assert_eq!(s.freq_slowdown(0.5), 1.0);
    }

    #[test]
    fn inflation_grows_with_pressure() {
        let s = Sensitivity::new(0.5, 1.0, 0.0, 0.0, 0.0);
        assert_eq!(s.inflation(0.0, 0.0, 0.0, 0.0), 1.0);
        let half = s.inflation(0.0, 0.5, 0.0, 0.0);
        let full = s.inflation(0.0, 1.0, 0.0, 0.0);
        assert!(half > 1.0 && full > half);
        assert_eq!(full, 2.0);
    }

    #[test]
    fn inflation_compounds_multiplicatively() {
        let s = Sensitivity::new(1.0, 1.0, 0.0, 0.0, 0.0);
        let both = s.inflation(1.0, 1.0, 0.0, 0.0);
        assert_eq!(both, 4.0, "(1+1)*(1+1)");
    }

    #[test]
    fn pressure_clamps() {
        let s = Sensitivity::new(1.0, 0.0, 0.0, 0.0, 0.0);
        assert_eq!(s.inflation(5.0, 0.0, 0.0, 0.0), 2.0);
        assert_eq!(s.inflation(-3.0, 0.0, 0.0, 0.0), 1.0);
    }

    #[test]
    fn freq_slowdown_linear_when_fully_bound() {
        let s = Sensitivity::new(0.0, 0.0, 0.0, 0.0, 1.0);
        assert!((s.freq_slowdown(0.5) - 2.0).abs() < 1e-12);
        assert_eq!(s.freq_slowdown(1.0), 1.0);
    }

    #[test]
    fn freq_slowdown_partial_binding() {
        let s = Sensitivity::new(0.0, 0.0, 0.0, 0.0, 0.5);
        // Half the work doubles, half stays: 0.5*2 + 0.5 = 1.5.
        assert!((s.freq_slowdown(0.5) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn constructor_clamps_negatives() {
        let s = Sensitivity::new(-1.0, -2.0, 3.0, -4.0, -0.1);
        assert_eq!(s.cpu, 0.0);
        assert_eq!(s.dram, 3.0);
        assert_eq!(s.max_component(), 3.0);
    }
}
