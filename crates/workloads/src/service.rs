//! A latency-critical service: a DAG of components with call patterns.
//!
//! The paper represents an LC workload as a directed acyclic graph whose
//! vertices are components (§3.1). Requests enter at the entry component
//! and flow along call edges; where the DAG fans out (e.g. the Redis
//! master calling its slaves), the branches execute in parallel and the
//! end-to-end latency is determined by the critical path (§3.4,
//! Equation 5).

use crate::component::ComponentSpec;
use serde::{Deserialize, Serialize};

/// A downstream call edge.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Call {
    /// Index of the callee node in [`ServiceSpec::nodes`].
    pub target: usize,
    /// Probability that a given request takes this edge (1.0 =
    /// unconditional). Probabilities of sibling calls are independent.
    pub probability: f64,
}

impl Call {
    /// An unconditional call edge.
    pub fn always(target: usize) -> Self {
        Call {
            target,
            probability: 1.0,
        }
    }

    /// A probabilistic call edge.
    pub fn sometimes(target: usize, probability: f64) -> Self {
        Call {
            target,
            probability: probability.clamp(0.0, 1.0),
        }
    }
}

/// One node of the service DAG.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceNode {
    /// The component running at this node.
    pub component: ComponentSpec,
    /// Downstream calls issued between the pre and post phases.
    pub calls: Vec<Call>,
    /// If true the calls are issued concurrently (fan-out) and joined;
    /// if false they are issued sequentially.
    pub parallel: bool,
}

impl ServiceNode {
    /// A leaf node with no downstream calls.
    pub fn leaf(component: ComponentSpec) -> Self {
        ServiceNode {
            component,
            calls: Vec::new(),
            parallel: false,
        }
    }

    /// A node that calls the given targets sequentially.
    pub fn seq(component: ComponentSpec, calls: Vec<Call>) -> Self {
        ServiceNode {
            component,
            calls,
            parallel: false,
        }
    }

    /// A node that fans out to the given targets in parallel.
    pub fn fan_out(component: ComponentSpec, calls: Vec<Call>) -> Self {
        ServiceNode {
            component,
            calls,
            parallel: true,
        }
    }
}

/// A complete LC service specification.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Service name ("e-commerce", "redis", ...).
    pub name: String,
    /// DAG nodes; node 0 is the entry component.
    pub nodes: Vec<ServiceNode>,
    /// Tail-latency SLA in ms (Table 1).
    pub sla_ms: f64,
    /// The published maximum load in QPS (Table 1; reporting only — the
    /// simulation runs at [`ServiceSpec::sim_maxload_rps`]).
    pub nominal_maxload_qps: f64,
    /// Container count (Table 1; reporting only).
    pub containers: u32,
}

impl ServiceSpec {
    /// Index of the entry node.
    pub const ENTRY: usize = 0;

    /// Number of components (== number of Servpods when each component is
    /// deployed on its own machine).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the service has no nodes (never valid; see
    /// [`ServiceSpec::validate`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The component names in node order.
    pub fn component_names(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .map(|n| n.component.name.as_str())
            .collect()
    }

    /// Finds a node index by component name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.component.name == name)
    }

    /// Expected number of visits per request for every node, from walking
    /// the DAG edge probabilities.
    pub fn expected_visits(&self) -> Vec<f64> {
        let mut visits = vec![0.0; self.nodes.len()];
        // The DAG is validated acyclic with forward edges, so one pass in
        // index order starting from a unit visit at the entry suffices.
        if !self.nodes.is_empty() {
            visits[Self::ENTRY] = 1.0;
            for i in 0..self.nodes.len() {
                let v = visits[i];
                if v == 0.0 {
                    continue;
                }
                for call in &self.nodes[i].calls {
                    visits[call.target] += v * call.probability;
                }
            }
        }
        visits
    }

    /// The simulated maximum load in requests/second: 95% of the
    /// bottleneck component's capacity (divided by its expected visits).
    ///
    /// The paper measures MaxLoad "when the arrival speed approaches the
    /// maximum processing speed"; the 10% margin keeps the queueing system
    /// stable at 100% load, where the tail is large but finite — which is
    /// where the paper measures its SLA.
    pub fn sim_maxload_rps(&self) -> f64 {
        let visits = self.expected_visits();
        0.90 * self
            .nodes
            .iter()
            .zip(&visits)
            .map(|(n, &v)| {
                if v <= 0.0 {
                    f64::INFINITY
                } else {
                    n.component.capacity_rps() / v
                }
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// Index of the bottleneck component (highest utilization per unit
    /// offered load).
    pub fn bottleneck(&self) -> usize {
        let visits = self.expected_visits();
        let mut best = 0;
        let mut best_cap = f64::INFINITY;
        for (i, (n, &v)) in self.nodes.iter().zip(&visits).enumerate() {
            let cap = if v <= 0.0 {
                f64::INFINITY
            } else {
                n.component.capacity_rps() / v
            };
            if cap < best_cap {
                best_cap = cap;
                best = i;
            }
        }
        best
    }

    /// Validates the DAG: non-empty, edges point strictly forward
    /// (guaranteeing acyclicity), targets are in range, probabilities in
    /// `[0,1]`, and all components valid.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes.is_empty() {
            return Err(format!("service {}: no components", self.name));
        }
        if self.sla_ms <= 0.0 {
            return Err(format!("service {}: non-positive SLA", self.name));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            node.component.validate()?;
            for call in &node.calls {
                if call.target >= self.nodes.len() {
                    return Err(format!(
                        "service {}: node {} calls out-of-range node {}",
                        self.name, i, call.target
                    ));
                }
                if call.target <= i {
                    return Err(format!(
                        "service {}: node {} calls backward/self edge to {}",
                        self.name, i, call.target
                    ));
                }
                if !(0.0..=1.0).contains(&call.probability) {
                    return Err(format!(
                        "service {}: node {} has probability {}",
                        self.name, i, call.probability
                    ));
                }
            }
        }
        // Every non-entry node must be reachable.
        let visits = self.expected_visits();
        for (i, &v) in visits.iter().enumerate() {
            if i != Self::ENTRY && v == 0.0 {
                return Err(format!(
                    "service {}: node {} ({}) unreachable",
                    self.name, i, self.nodes[i].component.name
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ComponentBuilder;

    fn comp(name: &str, work_ms: f64, workers: u32) -> ComponentSpec {
        ComponentBuilder::new(name, work_ms, 0.0)
            .workers(workers)
            .build()
    }

    fn chain() -> ServiceSpec {
        ServiceSpec {
            name: "chain".into(),
            nodes: vec![
                ServiceNode::seq(comp("a", 1.0, 10), vec![Call::always(1)]),
                ServiceNode::seq(comp("b", 2.0, 10), vec![Call::always(2)]),
                ServiceNode::leaf(comp("c", 4.0, 10)),
            ],
            sla_ms: 100.0,
            nominal_maxload_qps: 1000.0,
            containers: 3,
        }
    }

    #[test]
    fn chain_validates() {
        assert!(chain().validate().is_ok());
    }

    #[test]
    fn expected_visits_chain() {
        let v = chain().expected_visits();
        assert_eq!(v, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn expected_visits_probabilistic() {
        let mut s = chain();
        s.nodes[1].calls = vec![Call::sometimes(2, 0.25)];
        let v = s.expected_visits();
        assert_eq!(v[2], 0.25);
    }

    #[test]
    fn bottleneck_is_slowest_per_visit() {
        let s = chain();
        // c has 4 ms work and 10 workers; with the default contention
        // factor 2.0 its full-load capacity is 10/(0.004*3) = 833.3 rps,
        // the lowest; sim maxload applies the 5% stability margin.
        assert_eq!(s.bottleneck(), 2);
        assert!((s.sim_maxload_rps() - 0.90 * 10.0 / 0.012).abs() < 1e-6);
    }

    #[test]
    fn fan_out_visits_both_branches() {
        let s = ServiceSpec {
            name: "fan".into(),
            nodes: vec![
                ServiceNode::fan_out(
                    comp("master", 1.0, 10),
                    vec![Call::always(1), Call::always(2)],
                ),
                ServiceNode::leaf(comp("s1", 1.0, 10)),
                ServiceNode::leaf(comp("s2", 1.0, 10)),
            ],
            sla_ms: 10.0,
            nominal_maxload_qps: 100.0,
            containers: 3,
        };
        assert!(s.validate().is_ok());
        assert_eq!(s.expected_visits(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn validate_rejects_backward_edge() {
        let mut s = chain();
        s.nodes[2].calls = vec![Call::always(0)];
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let mut s = chain();
        s.nodes[2].calls = vec![Call::always(99)];
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_unreachable() {
        let mut s = chain();
        s.nodes[1].calls.clear();
        assert!(s.validate().is_err(), "node 2 became unreachable");
    }

    #[test]
    fn validate_rejects_empty_and_bad_sla() {
        let mut s = chain();
        s.sla_ms = 0.0;
        assert!(s.validate().is_err());
        let s = ServiceSpec {
            name: "empty".into(),
            nodes: vec![],
            sla_ms: 1.0,
            nominal_maxload_qps: 1.0,
            containers: 0,
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn index_of_finds_components() {
        let s = chain();
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("zzz"), None);
        assert_eq!(s.component_names(), vec!["a", "b", "c"]);
    }
}
