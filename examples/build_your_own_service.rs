//! Bring your own service: define a custom LC application with the
//! public API, profile it, and derive Rhythm thresholds for it.
//!
//! ```text
//! cargo run --release --example build_your_own_service
//! ```

use rhythm::analyzer::contributions;
use rhythm::core::{profile_service, ProfileConfig};
use rhythm::workloads::component::ComponentBuilder;
use rhythm::workloads::sensitivity::Sensitivity;
use rhythm::workloads::service::{Call, ServiceNode, ServiceSpec};

fn main() {
    // A three-tier "ticket shop": an API gateway fanning out to a
    // search index and an inventory database in parallel.
    let gateway = ComponentBuilder::new("gateway", 3.0, 0.4)
        .post(2.0, 0.4)
        .workers(24)
        .cores(8)
        .contention(2.0)
        .knee(0.92)
        .sensitivity(Sensitivity::new(0.1, 0.1, 0.1, 0.4, 0.6))
        .build();
    let search = ComponentBuilder::new("search", 12.0, 0.5)
        .workers(16)
        .cores(16)
        .contention(4.0)
        .knee(0.85)
        .llc_mb(12.0)
        .sensitivity(Sensitivity::new(0.3, 0.8, 0.7, 0.2, 0.6))
        .build();
    let inventory = ComponentBuilder::new("inventory", 16.0, 0.7)
        .workers(12)
        .cores(12)
        .contention(7.0)
        .knee(0.78)
        .membw_per_req(40.0)
        .sensitivity(Sensitivity::new(0.4, 1.0, 1.2, 0.3, 0.4))
        .build();
    let service = ServiceSpec {
        name: "ticket-shop".into(),
        nodes: vec![
            ServiceNode::fan_out(gateway, vec![Call::always(1), Call::sometimes(2, 0.7)]),
            ServiceNode::leaf(search),
            ServiceNode::leaf(inventory),
        ],
        sla_ms: 150.0,
        nominal_maxload_qps: 2_000.0,
        containers: 9,
    };
    service.validate().expect("valid service");
    println!(
        "ticket-shop: {} Servpods, simulated max load {:.0} rps, bottleneck {}",
        service.len(),
        service.sim_maxload_rps(),
        service.nodes[service.bottleneck()].component.name
    );

    // Profile it once (solo-run sweep through the tracer pipeline).
    let profile = profile_service(
        &service,
        &ProfileConfig {
            load_levels: (1..=9).map(|i| i as f64 * 0.1).collect(),
            duration_s: 30,
            seed: 7,
            min_requests: 3_000,
            use_tracer: true,
        },
    );
    println!("\nper-Servpod sojourns over load (ms):");
    print!("{:<8}", "load");
    for p in &profile.pod_names {
        print!(" {p:>10}");
    }
    println!("  {:>8}", "p99");
    for level in &profile.levels {
        print!("{:<7.0}%", level.load * 100.0);
        for v in &level.mean_sojourn_ms {
            print!(" {v:>10.2}");
        }
        println!("  {:>8.1}", level.tail_ms);
    }

    // Contributions via Equations 1-5 (note the fan-out alpha on the
    // off-critical-path branch).
    println!("\ncontributions (Equation 4/5):");
    for c in contributions(&profile, &service) {
        println!(
            "  {:<10} P={:.3} rho={:.3} V={:.3} alpha={:.2} -> C={:.4}",
            c.name, c.weight, c.correlation, c.variation, c.alpha, c.value
        );
    }
}
