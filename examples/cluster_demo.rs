//! Cluster demo: a 16-machine e-commerce cluster with a shared BE
//! backlog, Rhythm vs Heracles.
//!
//! Four replicas of the 4-Servpod e-commerce service run at 85% load
//! while the cluster dispatcher places batch jobs (interference-score
//! policy) on machines whose controllers signal AllowBEGrowth. Jobs
//! killed by StopBE roll back to their last checkpoint and requeue, so
//! the run reports completion times and wasted work, not just
//! throughput.
//!
//! ```text
//! cargo run --release --example cluster_demo
//! ```

use rhythm::prelude::*;

fn main() {
    // One-time preparation: calibrate the SLA, profile the service,
    // derive the per-Servpod thresholds (Algorithm 1).
    let ctx = ServiceContext::prepare(
        apps::ecommerce(),
        &[BeSpec::of(BeKind::Wordcount)],
        7,
    );

    // 16 machines = 4 replicas; jobs scaled to ~15-60 solo-seconds so
    // the 3-minute demo window sees completions.
    let mut cfg = ClusterConfig::new(16).with_scaled_jobs(0.05);
    cfg.duration_s = 180;
    cfg.jobs_per_machine = 3;
    cfg.policy = PlacementPolicy::InterferenceScore;
    cfg.threads = 8;

    println!("running Rhythm and Heracles on {} machines ...", cfg.machines);
    let (rhythm, heracles) = compare_cluster(&ctx, &cfg);

    for (name, out) in [("Rhythm", &rhythm), ("Heracles", &heracles)] {
        let m = &out.metrics;
        println!("\n== {name} ==");
        println!("EMU {:.3} (LC {:.3} + BE {:.3})", m.emu, m.lc_throughput, m.be_throughput);
        println!("CPU {:.1}%  MemBW {:.1}%  p99/SLA {:.2}", m.cpu_util * 100.0, m.membw_util * 100.0, m.tail_ratio);
        println!(
            "jobs: {}/{} completed, mean completion {:.1}s, {:.2} jobs of work wasted, {} kills",
            m.jobs.completed, m.jobs.submitted, m.jobs.completion_mean_s, m.jobs.wasted_jobs, m.jobs.kills
        );
    }
    let gain = (rhythm.metrics.emu / heracles.metrics.emu - 1.0) * 100.0;
    println!("\nRhythm EMU improvement over Heracles: {gain:+.1}%");
}
