//! Cluster demo: a 16-machine e-commerce cluster with a shared BE
//! backlog, Rhythm vs Heracles, plus a snapshot → resume round trip.
//!
//! Four replicas of the 4-Servpod e-commerce service run at 85% load
//! while the cluster dispatcher places batch jobs (interference-score
//! policy) on machines whose controllers signal AllowBEGrowth. Jobs
//! killed by StopBE roll back to their last checkpoint and requeue, so
//! the run reports completion times and wasted work, not just
//! throughput. The demo then reruns the Rhythm cell with a mid-run
//! epoch-barrier snapshot, resumes it from the serialized bytes, and
//! shows the continuation is bit-identical to the straight-through run.
//!
//! ```text
//! cargo run --release --example cluster_demo
//! ```

use rhythm::prelude::*;

fn main() {
    // One-time preparation: calibrate the SLA, profile the service,
    // derive the per-Servpod thresholds (Algorithm 1).
    let ctx = ServiceContext::prepare(
        apps::ecommerce(),
        &[BeSpec::of(BeKind::Wordcount)],
        7,
    );

    // 16 machines = 4 replicas; jobs scaled to ~15-60 solo-seconds so
    // the 3-minute demo window sees completions.
    let mut cfg = ClusterConfig::new(16).with_scaled_jobs(0.05);
    cfg.duration_s = 180;
    cfg.jobs_per_machine = 3;
    cfg.policy = PlacementPolicy::InterferenceScore;
    cfg.threads = 8;

    println!("running Rhythm and Heracles on {} machines ...", cfg.machines);
    let (rhythm, heracles) = compare_cluster(&ctx, &cfg);

    for (name, out) in [("Rhythm", &rhythm), ("Heracles", &heracles)] {
        let m = &out.metrics;
        println!("\n== {name} ==");
        println!("EMU {:.3} (LC {:.3} + BE {:.3})", m.emu, m.lc_throughput, m.be_throughput);
        println!("CPU {:.1}%  MemBW {:.1}%  p99/SLA {:.2}", m.cpu_util * 100.0, m.membw_util * 100.0, m.tail_ratio);
        println!(
            "jobs: {}/{} completed, mean completion {:.1}s, {:.2} jobs of work wasted, {} kills",
            m.jobs.completed, m.jobs.submitted, m.jobs.completion_mean_s, m.jobs.wasted_jobs, m.jobs.kills
        );
    }
    let gain = (rhythm.metrics.emu / heracles.metrics.emu - 1.0) * 100.0;
    println!("\nRhythm EMU improvement over Heracles: {gain:+.1}%");

    // Durable state: capture the Rhythm run at the half-way epoch
    // barrier, serialize it, and resume from the bytes. The resumed
    // half must land on exactly the machine fingerprints the
    // straight-through run produced — snapshots are checkpoints, not
    // approximations.
    let capture_epoch = 90;
    println!("\nsnapshotting the Rhythm cell at epoch {capture_epoch} and resuming ...");
    let run = ClusterRunner::new(&ctx, &ControllerChoice::Rhythm, &cfg)
        .snapshot_at(capture_epoch)
        .run();
    let bytes = run.snapshots[0].1.to_bytes();
    let snap = ClusterSnapshot::from_bytes(&bytes).expect("snapshot bytes round-trip");
    let resumed = ClusterRunner::resume(&snap, &ctx, &ControllerChoice::Rhythm, &cfg)
        .expect("snapshot matches its config")
        .run();
    assert_eq!(
        resumed.outcome.fingerprints, rhythm.fingerprints,
        "resumed run diverged from the straight-through run"
    );
    println!(
        "resume OK: {} bytes at epoch {capture_epoch}, fingerprint {:#018x}, \
         continuation bit-identical to the straight-through run",
        bytes.len(),
        snap.fingerprint()
    );
}
