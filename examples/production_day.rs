//! A production day: co-locate the SNMS microservice application with a
//! batch workload under a diurnal (ClarkNet-like) load trace, and watch
//! the controller ride the load curve.
//!
//! ```text
//! cargo run --release --example production_day
//! ```

use rhythm::core::experiment::{ControllerChoice, ExperimentConfig, ServiceContext};
use rhythm::core::timeline::phase_summary;
use rhythm::prelude::*;

fn main() {
    // SNMS: the DeathStarBench social network divided into three
    // Servpods (frontend / UserService / MediaService, §5.3.2).
    let ctx = ServiceContext::prepare(apps::snms(), &BeSpec::colocation_set(), 2026);
    println!("SNMS measured SLA: {:.0} ms", ctx.sla_ms);
    for (c, t) in ctx
        .thresholds
        .contributions
        .iter()
        .zip(&ctx.thresholds.thresholds)
    {
        println!(
            "  {:<13} contribution {:.3} (alpha {:.2}) -> loadlimit {:.0}%, slacklimit {:.3}",
            c.name,
            c.value,
            c.alpha,
            t.loadlimit * 100.0,
            t.slacklimit
        );
    }

    // One compressed "day" of diurnal load, peaking at 95% of max.
    let day = 1_200; // Virtual seconds.
    let load = LoadGen::clarknet_like(1, SimDuration::from_secs(day), 120, 0.95, 2026);
    println!(
        "\ndiurnal trace: mean load {:.0}%, peak {:.0}%",
        load.mean_fraction() * 100.0,
        load.peak_fraction() * 100.0
    );
    let cell = ExperimentConfig {
        bes: vec![BeSpec::of(BeKind::Wordcount)],
        load,
        duration_s: day,
        seed: 2026,
        record_timeline: true,
        controller_period_ms: 500,
    };
    let (out, rhythm) = ctx.run(ControllerChoice::Rhythm, &cell);
    let (_, heracles) = ctx.run(ControllerChoice::Heracles, &cell);

    println!("\nover the day (Rhythm vs Heracles):");
    println!(
        "  EMU            {:.2} vs {:.2}",
        rhythm.emu, heracles.emu
    );
    println!(
        "  BE throughput  {:.2} vs {:.2}",
        rhythm.be_throughput, heracles.be_throughput
    );
    println!(
        "  CPU util       {:.0}% vs {:.0}%",
        rhythm.cpu_util * 100.0,
        heracles.cpu_util * 100.0
    );
    println!(
        "  worst p99/SLA  {:.2} vs {:.2}",
        rhythm.tail_ratio, heracles.tail_ratio
    );

    // The UserService machine's phases through the day.
    let user = ctx.service.index_of("userservice").expect("pod");
    println!("\nUserService machine phases (Rhythm):");
    for (t, label) in phase_summary(&out.timeline, user).iter().take(24) {
        println!("  t={t:>7.0}s {label}");
    }
}
