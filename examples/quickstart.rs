//! Quickstart: run an LC service solo, co-locate it with a BE job under
//! Heracles and Rhythm, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rhythm::prelude::*;

fn main() {
    // 1. Pick a latency-critical service from the paper's Table 1 and
    //    inspect its Servpod structure.
    let service = apps::ecommerce();
    println!("service: {} ({} Servpods)", service.name, service.len());
    for node in &service.nodes {
        println!(
            "  {:<10} {} workers, {} cores, mean work {:.1} ms",
            node.component.name,
            node.component.workers,
            node.component.cores,
            node.component.mean_work_ms()
        );
    }
    println!(
        "simulated max load: {:.0} requests/s\n",
        service.sim_maxload_rps()
    );

    // 2. Solo run at 60% load: the baseline tail latency.
    let solo = Engine::new(service.clone(), EngineConfig::solo(0.6, 60, 42)).run();
    println!(
        "solo @60% load: {} requests, mean {:.1} ms, p99 {:.1} ms",
        solo.completed,
        solo.mean_ms(),
        solo.p99_ms()
    );

    // 3. Prepare Rhythm: calibrate the SLA, profile the Servpods once
    //    (the hybrid strategy: "profiling LC once, feedback control BE"),
    //    and derive per-Servpod thresholds.
    let ctx = ServiceContext::prepare(service, &BeSpec::colocation_set(), 42);
    println!("\nmeasured SLA: {:.1} ms", ctx.sla_ms);
    println!("derived per-Servpod thresholds:");
    for (c, t) in ctx
        .thresholds
        .contributions
        .iter()
        .zip(&ctx.thresholds.thresholds)
    {
        println!(
            "  {:<10} contribution {:.4} -> loadlimit {:.0}%, slacklimit {:.3}",
            c.name,
            c.value,
            t.loadlimit * 100.0,
            t.slacklimit
        );
    }

    // 4. Co-locate with wordcount at 65% load under both controllers.
    let cell = ExperimentConfig {
        bes: vec![BeSpec::of(BeKind::Wordcount)],
        load: LoadGen::constant(0.65),
        duration_s: 120,
        seed: 42,
        record_timeline: false,
        controller_period_ms: 2_000,
    };
    let outcome = ctx.compare(&cell);
    println!("\nco-located with wordcount @65% load (120 s):");
    for (name, m) in [("Rhythm", &outcome.rhythm), ("Heracles", &outcome.heracles)] {
        println!(
            "  {name:<9} EMU {:.2}  BE throughput {:.2}  CPU {:.0}%  p99/SLA {:.2}",
            m.emu,
            m.be_throughput,
            m.cpu_util * 100.0,
            m.tail_ratio
        );
    }
    let gain = (outcome.rhythm.emu - outcome.heracles.emu) / outcome.heracles.emu * 100.0;
    println!("\nRhythm EMU improvement over Heracles: {gain:+.1}%");
}
