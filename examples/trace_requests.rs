//! Request tracing walkthrough: the §3.3 pipeline on a live service.
//!
//! Runs the Solr service solo, captures the kernel-style event stream
//! its requests would generate (including unrelated-process noise and
//! persistent-connection ambiguity), and reconstructs per-Servpod
//! sojourn times and the causal path graph — then verifies the paper's
//! §3.3 identity: FIFO pairing may mis-attribute individual requests,
//! but mean sojourns are exact.
//!
//! ```text
//! cargo run --release --example trace_requests
//! ```

use rhythm::core::{Engine, EngineConfig};
use rhythm::tracer::capture::{CaptureConfig, EventCapture};
use rhythm::tracer::{Cpg, Pairer};
use rhythm::workloads::apps;
use std::collections::BTreeMap;

fn main() {
    // 1. Run the service and keep the ground-truth visit trees.
    let service = apps::solr();
    let mut cfg = EngineConfig::solo(0.5, 30, 7);
    cfg.capture_visits = true;
    let out = Engine::new(service.clone(), cfg).run();
    println!(
        "ran {} solo @50% load: {} requests completed",
        service.name, out.completed
    );

    // 2. Synthesize the system-event stream a SystemTap probe would have
    //    captured — with noise, on persistent TCP connections and
    //    non-blocking threads (the hard case of §3.3).
    let mut capture = EventCapture::new(
        CaptureConfig {
            non_blocking: true,
            persistent_connections: true,
            noise_events_per_request: 12,
            ..CaptureConfig::default()
        },
        7,
    );
    for tree in &out.visit_trees {
        capture.record_request(tree);
    }
    let events = capture.finish();
    println!(
        "captured {} system events (ACCEPT/RECV/SEND/CLOSE + noise)",
        events.len()
    );

    // 3. Build the causal path graph (Figure 4).
    let cpg = Cpg::from_events(&events, 0);
    println!("\ncausal path graph:");
    print!("{}", cpg.to_dot());

    // 4. Pair events into per-Servpod sojourns and compare with ground
    //    truth.
    let paired = Pairer::new(0).pair(&events);
    println!(
        "paired {} requests; {} noise events filtered by context identifier",
        paired.request_count, paired.filtered_noise
    );
    let mut truth: BTreeMap<u32, Vec<f64>> = BTreeMap::new();
    for tree in &out.visit_trees {
        tree.accumulate_sojourns(&mut truth);
    }
    println!("\nper-Servpod total residence (ms) — the §3.3 invariant:");
    println!(
        "{:<14} {:>12} {:>12} {:>10}",
        "Servpod", "traced", "truth", "error"
    );
    for (pod, sojourns) in &truth {
        let true_total: f64 = sojourns.iter().sum();
        let traced = paired.total_residence(*pod);
        let name = &service.nodes[*pod as usize].component.name;
        println!(
            "{name:<14} {traced:>12.1} {true_total:>12.1} {:>9.5}%",
            (traced - true_total).abs() / true_total * 100.0
        );
    }
    println!(
        "\n(the §3.3 identity: even with persistent connections and a \
         non-blocking event loop,\n FIFO pairing may attribute a segment \
         to the wrong request, but the total —\n and hence the mean over \
         requests — residence per Servpod is preserved, which is\n why the \
         contribution analyzer consumes means, Equations 1-3)"
    );
}
