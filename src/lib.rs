//! # Rhythm — component-distinguishable workload deployment
//!
//! A full reproduction of *"Rhythm: Component-distinguishable Workload
//! Deployment in Datacenters"* (EuroSys 2020) as a Rust workspace: the
//! Servpod abstraction, the non-intrusive request tracer, the
//! tail-latency contribution analyzer, the per-machine co-location
//! controller, the Heracles baseline — and every substrate the paper's
//! evaluation needs (machine model with isolation mechanisms, queueing
//! models of the six LC services and seven BE jobs, an interference
//! model, and a deterministic discrete-event cluster runtime).
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name. See the README for the architecture and `DESIGN.md` /
//! `EXPERIMENTS.md` for the paper-experiment index.
//!
//! # Quickstart
//!
//! ```
//! use rhythm::core::{Engine, EngineConfig};
//! use rhythm::workloads::apps;
//!
//! // Run the e-commerce service alone at 50% load for 20 virtual
//! // seconds and read its tail latency.
//! let cfg = EngineConfig::solo(0.5, 20, 42);
//! let out = Engine::new(apps::ecommerce(), cfg).run();
//! assert!(out.completed > 0);
//! assert!(out.p99_ms() > out.mean_ms());
//! ```
// The workspace is unsafe-free; lock that in at the crate root. If a
// crate ever genuinely needs `unsafe`, downgrade its forbid to
// `#![deny(unsafe_op_in_unsafe_fn)]` and justify every block with a
// `// SAFETY:` comment (rhythm-lint rule U01 enforces the comment).
#![forbid(unsafe_code)]

pub use rhythm_analyzer as analyzer;
pub use rhythm_chaos as chaos;
pub use rhythm_cluster as cluster;
pub use rhythm_controller as controller;
pub use rhythm_core as core;
pub use rhythm_interference as interference;
pub use rhythm_lint as lint;
pub use rhythm_machine as machine;
pub use rhythm_sim as sim;
pub use rhythm_snapshot as snapshot;
pub use rhythm_telemetry as telemetry;
pub use rhythm_tracer as tracer;
pub use rhythm_workloads as workloads;

/// The most commonly used items in one import.
pub mod prelude {
    pub use rhythm_analyzer::{contributions, find_loadlimit, find_slacklimits, SojournProfile};
    pub use rhythm_chaos::{
        crash_restart, heavy_tailed_plan, outcome_fingerprint, recovery_time, JobSizeDist,
        Recovery, RestartCheck, Scenario, ScenarioOutcome,
    };
    pub use rhythm_cluster::{
        compare_cluster, run_cluster, ClusterConfig, ClusterMetrics, ClusterOutcome,
        ClusterTelemetry, FaultKind, FaultPlan, JobSpec, PlacementPolicy, ShardMap,
        ShardingReport,
    };
    pub use rhythm_controller::{BeAction, ThresholdPolicy, Thresholds};
    pub use rhythm_core::experiment::{ControllerChoice, ExperimentConfig, ServiceContext};
    pub use rhythm_core::{
        ControlMode, Engine, EngineConfig, EngineOutput, RunMetrics, ServiceThresholds,
    };
    pub use rhythm_interference::{InterferenceModel, Pressure};
    pub use rhythm_machine::{Allocation, Machine, MachineSpec};
    pub use rhythm_cluster::{ClusterRun, ClusterRunner, ClusterSnapshot};
    pub use rhythm_sim::{LatencyHistogram, SimDuration, SimRng, SimTime};
    pub use rhythm_snapshot::{Snapshot, SnapshotError, SnapshotFile};
    pub use rhythm_telemetry::{
        chrome_trace, export_jsonl, AuditRecord, ClusterEvent, ClusterEventKind, FlightRecorder,
        TailPoint, Telemetry, TelemetryConfig, TelemetryOutput,
    };
    pub use rhythm_workloads::{apps, BeKind, BeSpec, LoadGen, ServiceSpec};
}
