//! Thread-count invariance of the cluster runner.
//!
//! The epoch-barrier protocol promises bit-reproducible results for any
//! worker count: machines advance in parallel between barriers, but all
//! cross-machine decisions (dispatch, admission binding, kill handling,
//! job retirement) happen single-threaded in replica order at the
//! barrier. This test runs randomly drawn (seed, size, policy, load,
//! controller) cells with 1 worker and with 8 and requires the merged
//! metrics and the per-machine fingerprints to match exactly. A second
//! test pins a heterogeneous cluster (3 hardware classes, priority and
//! deadline jobs, a gang, preemption, aging) and requires the full
//! telemetry JSONL export to be byte-identical across 1/2/4/8 threads.
//!
//! The vendored proptest shim runs a fixed 64 cases — far too many for
//! whole-cluster runs — so the cells are drawn from a splitmix64 stream
//! instead (still deterministic, still random-looking).

use rhythm::prelude::*;
use std::sync::OnceLock;

/// Profiling a service (Algorithm 1) is by far the most expensive step,
/// so every case shares one prepared context.
fn ctx() -> &'static ServiceContext {
    static CTX: OnceLock<ServiceContext> = OnceLock::new();
    CTX.get_or_init(|| ServiceContext::prepare(apps::solr(), &[BeSpec::of(BeKind::Wordcount)], 11))
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn cell(seed: u64, machines: usize, policy: PlacementPolicy, load: f64, threads: usize) -> ClusterConfig {
    let mut c = ClusterConfig::new(machines).with_scaled_jobs(0.02);
    c.duration_s = 60;
    c.jobs_per_machine = 3;
    c.load = LoadGen::constant(load);
    c.policy = policy;
    c.seed = seed;
    c.threads = threads;
    c
}

#[test]
fn cluster_runs_are_thread_count_invariant() {
    let policies = [
        PlacementPolicy::RoundRobin,
        PlacementPolicy::LeastPressure,
        PlacementPolicy::InterferenceScore,
    ];
    let mut stream = 0xC1A5_7E12u64;
    for case in 0..5 {
        let seed = splitmix(&mut stream);
        let replicas = 1 + (splitmix(&mut stream) % 2) as usize;
        let policy = policies[(splitmix(&mut stream) % 3) as usize];
        let load = 0.3 + (splitmix(&mut stream) % 512) as f64 / 1024.0;
        let choice = if splitmix(&mut stream).is_multiple_of(2) {
            ControllerChoice::Rhythm
        } else {
            ControllerChoice::Heracles
        };
        let machines = replicas * ctx().service.len();

        let serial = run_cluster(ctx(), &choice, &cell(seed, machines, policy, load, 1));
        let parallel = run_cluster(ctx(), &choice, &cell(seed, machines, policy, load, 8));

        assert_eq!(
            serial.fingerprints, parallel.fingerprints,
            "case {case}: per-machine fingerprints diverged (seed={seed}, {policy:?}, {choice:?})"
        );
        let a = serde_json::to_string(&serial.metrics).unwrap();
        let b = serde_json::to_string(&parallel.metrics).unwrap();
        assert_eq!(
            a, b,
            "case {case}: merged metrics diverged (seed={seed}, {policy:?}, {choice:?})"
        );
        // The parallel run must actually have done the work.
        assert!(serial.metrics.completed_requests > 0, "case {case}: empty run");
    }
}

/// The heterogeneous scenario: every machine its own spec, a plan with
/// priorities, deadlines and a 3-instance gang, priority preemption and
/// queue aging on, full telemetry. The scheduler paths this exercises
/// (gang formation/abort, priority victim selection, EDF ordering,
/// aging re-keys) all run at the epoch barrier, so the export must be
/// byte-identical for any worker count.
fn hetero_cell(threads: usize) -> ClusterConfig {
    let mut c = ClusterConfig::new(4).with_scaled_jobs(0.02);
    c.duration_s = 60;
    c.load = LoadGen::constant(0.6);
    c.policy = PlacementPolicy::HeteroAware;
    c.seed = 0x4E7E;
    c.threads = threads;
    c.machine_specs = vec![
        MachineSpec::dense_compute(),
        MachineSpec::paper_testbed(),
        MachineSpec::lean_node(),
        MachineSpec::paper_testbed(),
    ];
    c.priority_preemption = true;
    c.queue_aging_s = Some(20.0);
    c.gang_patience_epochs = 3;
    c.telemetry = TelemetryConfig::full();
    let wc = c.be_mix[0].clone();
    c.job_plan = vec![
        JobSpec::solitary(wc.clone()).with_priority(2).with_deadline(30.0),
        JobSpec::solitary(wc.clone()).with_priority(1).with_gang(3),
        JobSpec::solitary(wc.clone()).with_priority(1).with_deadline(45.0),
        JobSpec::solitary(wc.clone()),
        JobSpec::solitary(wc),
    ];
    c
}

#[test]
fn hetero_gang_cluster_is_thread_count_invariant() {
    // solr has 2 Servpods: 4 machines = 2 replicas, so cross-replica
    // gang placement is actually exercised.
    let baseline = run_cluster(ctx(), &ControllerChoice::Rhythm, &hetero_cell(1));
    let base_tel = baseline.telemetry.as_ref().expect("telemetry enabled");
    let base_jsonl = base_tel.export_jsonl();
    assert!(baseline.metrics.completed_requests > 0, "empty run");
    assert_eq!(baseline.metrics.jobs.submitted, 7, "5 entries, gang of 3");
    assert_eq!(baseline.metrics.jobs.deadline_total, 2);
    for threads in [2usize, 4, 8] {
        let run = run_cluster(ctx(), &ControllerChoice::Rhythm, &hetero_cell(threads));
        assert_eq!(
            baseline.fingerprints, run.fingerprints,
            "fingerprints diverged at {threads} threads"
        );
        let jsonl = run.telemetry.as_ref().expect("telemetry enabled").export_jsonl();
        assert_eq!(
            base_jsonl, jsonl,
            "telemetry JSONL diverged at {threads} threads"
        );
        let a = serde_json::to_string(&baseline.metrics).unwrap();
        let b = serde_json::to_string(&run.metrics).unwrap();
        assert_eq!(a, b, "merged metrics diverged at {threads} threads");
    }
}
