//! Thread-count invariance of the cluster runner.
//!
//! The epoch-barrier protocol promises bit-reproducible results for any
//! worker count: machines advance in parallel between barriers, but all
//! cross-machine decisions (dispatch, admission binding, kill handling,
//! job retirement) happen single-threaded in replica order at the
//! barrier. This test runs randomly drawn (seed, size, policy, load,
//! controller) cells with 1 worker and with 8 and requires the merged
//! metrics and the per-machine fingerprints to match exactly.
//!
//! The vendored proptest shim runs a fixed 64 cases — far too many for
//! whole-cluster runs — so the cells are drawn from a splitmix64 stream
//! instead (still deterministic, still random-looking).

use rhythm::prelude::*;
use std::sync::OnceLock;

/// Profiling a service (Algorithm 1) is by far the most expensive step,
/// so every case shares one prepared context.
fn ctx() -> &'static ServiceContext {
    static CTX: OnceLock<ServiceContext> = OnceLock::new();
    CTX.get_or_init(|| ServiceContext::prepare(apps::solr(), &[BeSpec::of(BeKind::Wordcount)], 11))
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn cell(seed: u64, machines: usize, policy: PlacementPolicy, load: f64, threads: usize) -> ClusterConfig {
    let mut c = ClusterConfig::new(machines).with_scaled_jobs(0.02);
    c.duration_s = 60;
    c.jobs_per_machine = 3;
    c.load = LoadGen::constant(load);
    c.policy = policy;
    c.seed = seed;
    c.threads = threads;
    c
}

#[test]
fn cluster_runs_are_thread_count_invariant() {
    let policies = [
        PlacementPolicy::RoundRobin,
        PlacementPolicy::LeastPressure,
        PlacementPolicy::InterferenceScore,
    ];
    let mut stream = 0xC1A5_7E12u64;
    for case in 0..5 {
        let seed = splitmix(&mut stream);
        let replicas = 1 + (splitmix(&mut stream) % 2) as usize;
        let policy = policies[(splitmix(&mut stream) % 3) as usize];
        let load = 0.3 + (splitmix(&mut stream) % 512) as f64 / 1024.0;
        let choice = if splitmix(&mut stream).is_multiple_of(2) {
            ControllerChoice::Rhythm
        } else {
            ControllerChoice::Heracles
        };
        let machines = replicas * ctx().service.len();

        let serial = run_cluster(ctx(), &choice, &cell(seed, machines, policy, load, 1));
        let parallel = run_cluster(ctx(), &choice, &cell(seed, machines, policy, load, 8));

        assert_eq!(
            serial.fingerprints, parallel.fingerprints,
            "case {case}: per-machine fingerprints diverged (seed={seed}, {policy:?}, {choice:?})"
        );
        let a = serde_json::to_string(&serial.metrics).unwrap();
        let b = serde_json::to_string(&parallel.metrics).unwrap();
        assert_eq!(
            a, b,
            "case {case}: merged metrics diverged (seed={seed}, {policy:?}, {choice:?})"
        );
        // The parallel run must actually have done the work.
        assert!(serial.metrics.completed_requests > 0, "case {case}: empty run");
    }
}
