//! Shard-count and thread-count invariance of the sharded cluster
//! runner.
//!
//! Sharding is a data-layout and cost optimization, never a semantic
//! one: all shard queues draw sequence numbers from one shared source
//! (so a K-way merge over the shard heads pops in exactly global order)
//! and placement takes the global argmin over every shard's cached
//! ranking with the unsharded tie-break. These tests pin that claim:
//!
//! * The same 64-machine run at K = 1, 4 and 16 must produce
//!   byte-identical per-machine fingerprints and serialized metrics
//!   (K = 1 is the unsharded baseline the golden fixtures were made
//!   with).
//! * A 256-machine run at K = 8 must stay bit-identical across 1, 2, 4
//!   and 8 worker threads — sharding must not have weakened the epoch
//!   barrier's thread invariance.

use rhythm::prelude::*;
use std::sync::OnceLock;

/// Profiling a service (Algorithm 1) is by far the most expensive step,
/// so every case shares one prepared context.
fn ctx() -> &'static ServiceContext {
    static CTX: OnceLock<ServiceContext> = OnceLock::new();
    CTX.get_or_init(|| ServiceContext::prepare(apps::solr(), &[BeSpec::of(BeKind::Wordcount)], 11))
}

fn cell(machines: usize, duration_s: u64, shards: usize, threads: usize) -> ClusterConfig {
    let mut c = ClusterConfig::new(machines).with_scaled_jobs(0.02);
    c.duration_s = duration_s;
    c.jobs_per_machine = 2;
    c.load = LoadGen::constant(0.5);
    c.policy = PlacementPolicy::InterferenceScore;
    c.seed = 0x5AAD;
    c.shards = shards;
    c.threads = threads;
    c
}

#[test]
fn cluster_runs_are_shard_count_invariant() {
    // solr has 2 Servpods: 64 machines = 32 replicas, so K = 16 still
    // leaves 2 replicas per shard and steals actually happen.
    let baseline = run_cluster(ctx(), &ControllerChoice::Rhythm, &cell(64, 40, 1, 1));
    assert_eq!(baseline.sharding.shards, 1);
    assert_eq!(baseline.sharding.steals, 0, "K=1 cannot steal");
    assert!(baseline.metrics.completed_requests > 0, "empty run");
    assert!(baseline.metrics.jobs.completed > 0, "no jobs finished");
    let base_metrics = serde_json::to_string(&baseline.metrics).unwrap();
    for shards in [4usize, 16] {
        let run = run_cluster(ctx(), &ControllerChoice::Rhythm, &cell(64, 40, shards, 1));
        assert_eq!(run.sharding.shards, shards);
        assert_eq!(
            baseline.fingerprints, run.fingerprints,
            "fingerprints diverged at K={shards}"
        );
        let metrics = serde_json::to_string(&run.metrics).unwrap();
        assert_eq!(base_metrics, metrics, "metrics diverged at K={shards}");
        // With the backlog homed round-robin over the shards and the
        // argmin free to pick any machine, cross-shard placements are
        // inevitable — the steal counter proves sharding was exercised.
        assert!(run.sharding.steals > 0, "K={shards} run never crossed a shard");
    }
}

#[test]
fn sharded_cluster_runs_are_thread_count_invariant() {
    let baseline = run_cluster(ctx(), &ControllerChoice::Rhythm, &cell(256, 20, 8, 1));
    assert_eq!(baseline.sharding.shards, 8);
    assert!(baseline.metrics.completed_requests > 0, "empty run");
    let base_metrics = serde_json::to_string(&baseline.metrics).unwrap();
    for threads in [2usize, 4, 8] {
        let run = run_cluster(ctx(), &ControllerChoice::Rhythm, &cell(256, 20, 8, threads));
        assert_eq!(
            baseline.fingerprints, run.fingerprints,
            "fingerprints diverged at {threads} threads"
        );
        let metrics = serde_json::to_string(&run.metrics).unwrap();
        assert_eq!(base_metrics, metrics, "metrics diverged at {threads} threads");
        assert_eq!(
            baseline.sharding.steals, run.sharding.steals,
            "steal count diverged at {threads} threads"
        );
    }
}
