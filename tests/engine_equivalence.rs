//! Differential equivalence layer for the SoA engine hot path
//! (DESIGN.md §7): the batched busy-integral accounting must be
//! **observationally equal** to the straightforward per-transition math
//! it replaced. Each case runs a small cell with the shadow busy log
//! enabled and recomputes every node's worker-busy integral from the raw
//! transition stream — an O(transitions) reference implementation kept
//! deliberately naive — then demands exact `u128` equality, not epsilon
//! closeness. A second block checks the utilization invariants
//! (`busy_area ≤ workers × elapsed`, monotone across flush points) and
//! that flushing at arbitrary extra instants never changes a run.
//!
//! `PROPTEST_CASES` scales the sweep (the CI properties job runs 256).

use proptest::prelude::*;
use rhythm::core::{BusyTransition, ControlMode, Engine, EngineConfig};
use rhythm::prelude::*;

/// Builds one of four engine cell shapes: three services in solo mode
/// plus the managed/co-located e-commerce cell, whose controller path
/// exercises BE worker transitions on top of the LC phase traffic.
fn cell(kind: u8, load: f64, secs: u64, seed: u64) -> (ServiceSpec, EngineConfig) {
    let service = match kind % 4 {
        0 => apps::ecommerce(),
        1 => apps::solr(),
        2 => apps::snms(),
        _ => apps::ecommerce(),
    };
    let mut cfg = EngineConfig::solo(load, secs, seed);
    if kind % 4 == 3 {
        cfg.bes = vec![BeSpec::of(BeKind::Wordcount)];
        cfg.sla_ms = 400.0;
        cfg.mode = ControlMode::Managed {
            thresholds: vec![Thresholds::new(0.9, 0.05); service.len()],
        };
    }
    (service, cfg)
}

/// Reference recompute: the integral as the engine computed it *before*
/// the batched-settlement rework — one rectangle `busy × Δt` per
/// transition, walked straight off the shadow event log. Returns, per
/// node, the area settled up to its **last transition** (the value the
/// old code stored, and what snapshots encode) and the full integral at
/// `end` including the still-open rectangle.
fn reference_busy_integrals(
    log: &[BusyTransition],
    nodes: usize,
    end: SimTime,
) -> Vec<(u128, u128)> {
    let mut busy = vec![0u32; nodes];
    let mut last = vec![0u64; nodes];
    let mut area = vec![0u128; nodes];
    for tr in log {
        let i = tr.node as usize;
        let t = tr.at.as_nanos();
        assert!(t >= last[i], "shadow log out of time order");
        area[i] += u128::from(busy[i]) * u128::from(t - last[i]);
        // Logged deltas are the *effective* (clamp-adjusted) ones, so
        // this never underflows.
        busy[i] = (i64::from(busy[i]) + i64::from(tr.delta)) as u32;
        last[i] = t;
    }
    (0..nodes)
        .map(|i| {
            let tail = u128::from(busy[i]) * u128::from(end.as_nanos() - last[i]);
            (area[i], area[i] + tail)
        })
        .collect()
}

proptest! {
    /// The differential test proper: batched settlement vs. the
    /// O(transitions) reference, exactly, at an arbitrary mid-run
    /// instant of an arbitrary small cell.
    #[test]
    fn batched_integrals_equal_reference_recompute(
        (kind, load, secs, seed) in (any::<u8>(), 0.2f64..0.95, 6u64..20, any::<u64>()),
        frac in 0.1f64..1.0,
    ) {
        let (service, mut cfg) = cell(kind, load, secs, seed);
        cfg.shadow_busy_log = true;
        let mut e = Engine::new(service, cfg);
        let t = SimTime::ZERO + SimDuration::from_secs_f64(secs as f64 * frac);
        e.run_until(t);
        e.flush_busy_integrals(t);
        let log = e.take_busy_log();
        prop_assert!(!log.is_empty(), "cell produced no busy transitions");
        let n = e.machine_count();
        let reference = reference_busy_integrals(&log, n, t);
        for (i, &(settled, at_t)) in reference.iter().enumerate() {
            prop_assert_eq!(
                e.busy_area_ns(i),
                settled,
                "node {} batched settled integral diverged from reference",
                i
            );
            prop_assert_eq!(
                e.busy_integral_at(i, t),
                at_t,
                "node {} probe integral at t diverged from reference",
                i
            );
        }
    }

    /// Utilization invariants at every flush point: a node can never
    /// accumulate more busy-time than `workers × elapsed`, and settled
    /// integrals never decrease.
    #[test]
    fn busy_integrals_bounded_and_monotone(
        (kind, load, secs, seed) in (any::<u8>(), 0.2f64..0.95, 6u64..16, any::<u64>()),
        steps in 3usize..9,
    ) {
        let (service, cfg) = cell(kind, load, secs, seed);
        let mut e = Engine::new(service, cfg);
        let mut prev: Vec<u128> = Vec::new();
        for s in 1..=steps {
            let t = SimTime::ZERO
                + SimDuration::from_secs_f64(secs as f64 * s as f64 / steps as f64);
            e.run_until(t);
            e.flush_busy_integrals(t);
            if prev.is_empty() {
                prev = vec![0; e.machine_count()];
            }
            for (i, p) in prev.iter_mut().enumerate() {
                let a = e.busy_area_ns(i);
                prop_assert!(a >= *p, "node {} integral decreased across flush", i);
                prop_assert!(
                    a <= u128::from(e.node_workers(i)) * u128::from(t.as_nanos()),
                    "node {} busier than workers × elapsed",
                    i
                );
                *p = a;
            }
        }
    }

    /// Flush-placement invariance: settling at arbitrary extra instants
    /// is pure bookkeeping — the final integrals and the whole run's
    /// observable output stay bit-identical to a never-flushed twin.
    #[test]
    fn flush_placement_never_changes_results(
        (kind, load, secs, seed) in (any::<u8>(), 0.2f64..0.95, 6u64..14, any::<u64>()),
        cuts in prop::collection::vec(0.01f64..0.99, 1..12),
    ) {
        let (service_a, cfg_a) = cell(kind, load, secs, seed);
        let (service_b, cfg_b) = cell(kind, load, secs, seed);
        let mut flushed = Engine::new(service_a, cfg_a);
        let mut plain = Engine::new(service_b, cfg_b);
        let mut cuts = cuts;
        cuts.sort_by(f64::total_cmp);
        for c in &cuts {
            let t = SimTime::ZERO + SimDuration::from_secs_f64(secs as f64 * c);
            flushed.run_until(t);
            flushed.flush_busy_integrals(t);
        }
        // Settle both at a common instant and compare the integrals…
        let end = SimTime::ZERO + SimDuration::from_secs(secs);
        flushed.run_until(end);
        plain.run_until(end);
        flushed.flush_busy_integrals(end);
        plain.flush_busy_integrals(end);
        for i in 0..flushed.machine_count() {
            prop_assert_eq!(flushed.busy_area_ns(i), plain.busy_area_ns(i));
        }
        // …then drain to completion and compare the observable output.
        let (oa, ob) = (flushed.run(), plain.run());
        prop_assert_eq!(oa.completed, ob.completed);
        prop_assert_eq!(oa.completed_total, ob.completed_total);
        prop_assert_eq!(oa.p99_ms().to_bits(), ob.p99_ms().to_bits());
        prop_assert_eq!(oa.mean_ms().to_bits(), ob.mean_ms().to_bits());
        for (pa, pb) in oa.pods.iter().zip(&ob.pods) {
            prop_assert_eq!(pa.cpu_util.to_bits(), pb.cpu_util.to_bits());
            prop_assert_eq!(pa.be_throughput.to_bits(), pb.be_throughput.to_bits());
        }
    }
}
