//! Golden determinism tests: the engine's output metrics must stay
//! **bit-identical** for fixed seeds across refactors of the hot path.
//!
//! The fixtures below were recorded from the engine before the
//! allocation-free hot-path rework (request arena, cached inflation,
//! precomputed samplers); the tests prove the rework changed no observable
//! behavior. If an *intentional* behavior change ever invalidates them,
//! regenerate with:
//!
//! ```text
//! cargo test --test golden -- --ignored print_fingerprints --nocapture
//! ```
//!
//! and paste the printed arrays — but treat any diff as a determinism
//! regression until proven otherwise: every figure reproduction depends on
//! these streams.

use rhythm::core::{ControlMode, Engine, EngineConfig, EngineOutput};
use rhythm::prelude::*;

/// Flattens every metric of an [`EngineOutput`] into exact bits:
/// counters as-is, floats via `to_bits`. Any behavioral drift in
/// arrivals, service sampling, queueing order, controller actions or
/// float accumulation order changes some element.
fn fingerprint(out: &EngineOutput) -> Vec<u64> {
    let mut fp = vec![
        out.completed,
        out.completed_total,
        out.latency.count(),
        out.p99_ms().to_bits(),
        out.mean_ms().to_bits(),
        out.latency.quantile(0.5).to_bits(),
        out.latency.max().to_bits(),
        out.worst_window_p99_ms.to_bits(),
        out.offered_load_avg.to_bits(),
        out.measured_s.to_bits(),
        out.maxload_rps.to_bits(),
    ];
    for p in &out.pods {
        fp.push(p.cpu_util.to_bits());
        fp.push(p.lc_cpu_util.to_bits());
        fp.push(p.membw_util.to_bits());
        fp.push(p.be_throughput.to_bits());
        fp.push(p.be_instances_avg.to_bits());
        fp.push(p.sojourn_stats.count());
        fp.push(p.sojourn_stats.mean().to_bits());
        fp.push(p.sojourn_stats.sample_variance().to_bits());
    }
    fp
}

fn solo_run() -> EngineOutput {
    Engine::new(apps::ecommerce(), EngineConfig::solo(0.6, 30, 42)).run()
}

fn static_run() -> EngineOutput {
    let mut cfg = EngineConfig::solo(0.6, 30, 43);
    cfg.bes = vec![BeSpec::of(BeKind::StreamDram { big: true })];
    cfg.mode = ControlMode::Static {
        instances: 2,
        cores: 4,
        llc_ways: 4,
        pods: Vec::new(),
    };
    Engine::new(apps::ecommerce(), cfg).run()
}

fn managed_run() -> EngineOutput {
    let mut cfg = EngineConfig::solo(0.5, 40, 44);
    cfg.bes = vec![BeSpec::of(BeKind::Wordcount)];
    cfg.sla_ms = 400.0;
    cfg.mode = ControlMode::Managed {
        thresholds: vec![Thresholds::new(0.9, 0.05); 4],
    };
    Engine::new(apps::ecommerce(), cfg).run()
}

/// A heterogeneous 4-machine cluster run (3 hardware classes,
/// priority/deadline jobs, a 3-instance gang, preemption, aging): pins
/// the whole scheduler stack — EDF queue, hetero-aware placement, gang
/// formation/abort — on top of the engine streams.
fn hetero_cluster_run() -> ClusterOutcome {
    let ctx = ServiceContext::prepare(apps::solr(), &[BeSpec::of(BeKind::Wordcount)], 11);
    let mut c = ClusterConfig::new(4).with_scaled_jobs(0.02);
    c.duration_s = 60;
    c.load = LoadGen::constant(0.6);
    c.policy = PlacementPolicy::HeteroAware;
    c.seed = 0x601D;
    c.threads = 2;
    c.machine_specs = vec![
        MachineSpec::dense_compute(),
        MachineSpec::paper_testbed(),
        MachineSpec::lean_node(),
        MachineSpec::paper_testbed(),
    ];
    c.priority_preemption = true;
    c.queue_aging_s = Some(20.0);
    c.gang_patience_epochs = 3;
    let wc = c.be_mix[0].clone();
    c.job_plan = vec![
        JobSpec::solitary(wc.clone()).with_priority(2).with_deadline(30.0),
        JobSpec::solitary(wc.clone()).with_priority(1).with_gang(3),
        JobSpec::solitary(wc.clone()).with_priority(1).with_deadline(45.0),
        JobSpec::solitary(wc.clone()),
        JobSpec::solitary(wc),
    ];
    run_cluster(&ctx, &ControllerChoice::Rhythm, &c)
}

/// The durable-state fixture: a 64-machine, 4-shard run snapshotted at
/// epoch 5. The container bytes cover the codec layout, every engine's
/// RNG/calendar/arena state and the full sharded scheduler, so the byte
/// fingerprint pins all of them at once.
fn snapshot_run() -> ClusterSnapshot {
    let ctx = ServiceContext::prepare(apps::solr(), &[BeSpec::of(BeKind::Wordcount)], 11);
    let mut c = ClusterConfig::new(64).with_scaled_jobs(0.02);
    c.duration_s = 20;
    c.load = LoadGen::constant(0.5);
    c.shards = 4;
    c.threads = 2;
    let mut run = ClusterRunner::new(&ctx, &ControllerChoice::Rhythm, &c)
        .snapshot_at(5)
        .run();
    run.snapshots.remove(0).1
}

/// The chaos campaign: one outcome fingerprint per scenario of the
/// library `repro chaos` runs (8 machines = two e-commerce replicas,
/// seed 0xCA05). Pins the trace-shaped load generators (diurnal +
/// flash crowd), the heavy-tailed job plans and the fault injector in
/// one sweep — including the crash-restart drill, whose fingerprint is
/// the *resumed* run's.
fn chaos_campaign() -> Vec<u64> {
    let ctx = ServiceContext::prepare(
        apps::ecommerce(),
        &[
            BeSpec::of(BeKind::Wordcount),
            BeSpec::of(BeKind::StreamDram { big: true }),
        ],
        0xCA05,
    );
    Scenario::library(8, 0xCA05)
        .iter()
        .map(|s| s.run(&ctx, &ControllerChoice::Rhythm).fingerprint)
        .collect()
}

/// Flattens a cluster outcome the same way: the per-machine FNV
/// fingerprints already cover every engine stream, so the merged
/// metrics and job ledger are appended on top.
fn cluster_fingerprint(out: &ClusterOutcome) -> Vec<u64> {
    let mut fp = out.fingerprints.clone();
    let m = &out.metrics;
    fp.extend([
        m.machines as u64,
        m.replicas as u64,
        m.lc_throughput.to_bits(),
        m.be_throughput.to_bits(),
        m.emu.to_bits(),
        m.cpu_util.to_bits(),
        m.membw_util.to_bits(),
        m.p99_ms.to_bits(),
        m.tail_ratio.to_bits(),
        m.sla_violations,
        m.be_kills,
        m.completed_requests,
        m.requeues,
        m.jobs.submitted,
        m.jobs.completed,
        m.jobs.kills,
        m.jobs.completion_mean_s.to_bits(),
        m.jobs.completion_p99_s.to_bits(),
        m.jobs.wasted_jobs.to_bits(),
        m.jobs.deadline_total,
        m.jobs.deadline_missed,
        m.jobs.deadline_miss_rate.to_bits(),
    ]);
    fp
}

/// Regenerates the fixture arrays (see module docs).
#[test]
#[ignore]
fn print_fingerprints() {
    for (name, out) in [
        ("SOLO", solo_run()),
        ("STATIC", static_run()),
        ("MANAGED", managed_run()),
    ] {
        println!("const {name}: &[u64] = &{:?};", fingerprint(&out));
    }
    println!(
        "const HETERO_CLUSTER: &[u64] = &{:?};",
        cluster_fingerprint(&hetero_cluster_run())
    );
    let snap = snapshot_run();
    println!(
        "const SNAPSHOT_N64_K4_E5: (u64, usize) = ({:#018x}, {});",
        snap.fingerprint(),
        snap.to_bytes().len()
    );
    println!("const CHAOS_CAMPAIGN: &[u64] = &{:?};", chaos_campaign());
    println!(
        "const CORE_SCHEMA_HASH: u64 = {:#018x};",
        rhythm::snapshot::schema_hash(rhythm::core::SNAPSHOT_SCHEMA)
    );
}

include!("fixtures/golden_fixtures.rs");

#[test]
fn solo_metrics_bit_identical() {
    assert_eq!(fingerprint(&solo_run()), SOLO);
}

#[test]
fn static_metrics_bit_identical() {
    assert_eq!(fingerprint(&static_run()), STATIC);
}

#[test]
fn managed_metrics_bit_identical() {
    assert_eq!(fingerprint(&managed_run()), MANAGED);
}

#[test]
fn hetero_cluster_bit_identical() {
    assert_eq!(cluster_fingerprint(&hetero_cluster_run()), HETERO_CLUSTER);
}

#[test]
fn snapshot_bytes_bit_identical() {
    let snap = snapshot_run();
    let len = snap.to_bytes().len();
    assert_eq!((snap.fingerprint(), len), SNAPSHOT_N64_K4_E5);
}

#[test]
fn chaos_campaign_bit_identical() {
    assert_eq!(chaos_campaign(), CHAOS_CAMPAIGN);
}

/// The SoA node-state rework must not bump the engine wire schema: the
/// per-node field order on the wire is unchanged, so the schema string
/// — and therefore every existing snapshot file — stays valid. A
/// failure here means a layout change leaked into the codec.
#[test]
fn core_snapshot_schema_hash_unchanged() {
    assert_eq!(
        rhythm::snapshot::schema_hash(rhythm::core::SNAPSHOT_SCHEMA),
        CORE_SCHEMA_HASH
    );
}
