//! Tier-1 gate: the rhythm-lint determinism & invariant pass must be
//! clean over the whole workspace.
//!
//! This is the layer every future PR gets checked against for free: a
//! stray `HashMap` iteration or `Instant::now()` in a deterministic
//! crate fails the build here, at the source level, instead of showing
//! up later as a scrambled golden fingerprint. The escape hatch is
//! `// lint:allow(<rule>) -- <reason>` (reason mandatory); see
//! DESIGN.md §10.

use rhythm::lint::{lint_source, lint_workspace, render_json, render_text};
use std::path::Path;

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn workspace_has_zero_unsuppressed_findings() {
    let report = lint_workspace(root()).expect("workspace walk");
    assert!(report.files_scanned > 50, "walk looks truncated");
    assert!(
        report.is_clean(),
        "unsuppressed lint findings:\n{}",
        render_text(&report)
    );
}

#[test]
fn every_suppression_carries_a_reason() {
    // A01 already fails reason-less pragmas as findings; this pins the
    // invariant from the other side — whatever *was* suppressed must
    // carry a non-empty reason in the report.
    let report = lint_workspace(root()).expect("workspace walk");
    for s in &report.suppressed {
        assert!(
            !s.reason.trim().is_empty(),
            "{}:{} {} suppressed without a reason",
            s.finding.file,
            s.finding.line,
            s.finding.rule
        );
    }
}

#[test]
fn gate_actually_fails_on_violations() {
    // Self-test of the gate itself: lint a known-bad fixture under a
    // deterministic-crate label and verify the pass would fail the
    // build. If this ever reports clean, the gate above is vacuous.
    let bad = root().join("crates/lint/tests/fixtures/bad_determinism.rs");
    let src = std::fs::read_to_string(bad).expect("fixture readable");
    let lint = lint_source("crates/sim/src/injected.rs", &src);
    assert!(
        lint.findings.len() >= 10,
        "bad fixture should trip D01-D04, got: {:#?}",
        lint.findings
    );
    for rule in ["D01", "D02", "D03", "D04"] {
        assert!(
            lint.findings.iter().any(|f| f.rule == rule),
            "rule {rule} did not fire on the bad fixture"
        );
    }
}

#[test]
fn lint_output_is_byte_identical_across_runs() {
    let a = lint_workspace(root()).expect("first run");
    let b = lint_workspace(root()).expect("second run");
    assert_eq!(
        render_json(&a),
        render_json(&b),
        "lint JSON must be byte-identical across consecutive runs"
    );
    assert_eq!(render_text(&a), render_text(&b));
}
