//! End-to-end integration tests: the full Rhythm pipeline across crates.
//!
//! These span profiling (engine → tracer → analyzer), threshold
//! derivation, and runtime control (controller → machine → interference
//! → engine), asserting the paper's qualitative claims hold in the
//! assembled system.

use rhythm::analyzer::loadlimit::loadlimits;
use rhythm::analyzer::contributions;
use rhythm::controller::BeAction;
use rhythm::core::experiment::{ControllerChoice, ExperimentConfig, ServiceContext};
use rhythm::core::{profile_service, ControlMode, Engine, EngineConfig, ProfileConfig};
use rhythm::prelude::*;

fn quick_profile_cfg(levels: usize) -> ProfileConfig {
    ProfileConfig {
        load_levels: (1..=levels).map(|i| i as f64 / (levels as f64 + 1.0)).collect(),
        duration_s: 20,
        seed: 99,
        min_requests: 1_500,
        use_tracer: false,
    }
}

#[test]
fn profiling_pipeline_end_to_end() {
    // Engine solo runs → sojourn profile → contributions → loadlimits.
    let service = apps::ecommerce();
    let profile = profile_service(&service, &quick_profile_cfg(6));
    assert!(profile.validate().is_ok());
    let contribs = contributions(&profile, &service);
    assert_eq!(contribs.len(), 4);
    // The bottleneck (MySQL) dominates the contributions.
    let mysql = service.index_of("mysql").unwrap();
    let max = contribs
        .iter()
        .map(|c| c.value)
        .fold(f64::MIN, f64::max);
    assert!((contribs[mysql].value - max).abs() < 1e-12, "{contribs:?}");
    let lls = loadlimits(&profile);
    for &ll in &lls {
        assert!((0.05..=1.0).contains(&ll));
    }
}

#[test]
fn tracer_profile_matches_ground_truth_profile() {
    let service = apps::solr();
    let mut cfg = quick_profile_cfg(4);
    let truth = profile_service(&service, &cfg);
    cfg.use_tracer = true;
    let traced = profile_service(&service, &cfg);
    for level in 0..truth.level_count() {
        for pod in 0..truth.pods() {
            let a = truth.levels[level].mean_sojourn_ms[pod];
            let b = traced.levels[level].mean_sojourn_ms[pod];
            assert!(
                (a - b).abs() / a < 0.02,
                "level {level} pod {pod}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn interference_degrades_the_right_component() {
    // Static stream-dram next to the Redis master must hurt far more
    // than next to the slave (§2's central observation).
    let service = apps::redis();
    let load = 0.7;
    let p99_with_be_at = |pod: usize| {
        let mut cfg = EngineConfig::solo(load, 40, 5);
        cfg.bes = vec![BeSpec::of(BeKind::StreamDram { big: true })];
        cfg.mode = ControlMode::Static {
            instances: 1,
            cores: 4,
            llc_ways: 2,
            pods: vec![pod],
        };
        Engine::new(service.clone(), cfg).run().p99_ms()
    };
    let solo = Engine::new(service.clone(), EngineConfig::solo(load, 40, 5))
        .run()
        .p99_ms();
    let at_master = p99_with_be_at(0);
    let at_slave = p99_with_be_at(1);
    let master_incr = (at_master - solo) / solo;
    let slave_incr = (at_slave - solo) / solo;
    assert!(
        master_incr > 2.0 * slave_incr.max(0.01),
        "master +{master_incr:.2} vs slave +{slave_incr:.2}"
    );
}

#[test]
fn full_colocation_pipeline_rhythm_vs_heracles() {
    let ctx = ServiceContext::prepare(apps::elasticsearch(), &BeSpec::colocation_set(), 7);
    // Sanity on the derived artifacts.
    assert_eq!(ctx.thresholds.thresholds.len(), 2);
    assert!(ctx.sla_ms.is_finite() && ctx.sla_ms > 0.0);
    let cell = ExperimentConfig {
        bes: vec![BeSpec::of(BeKind::Wordcount)],
        load: LoadGen::constant(0.85),
        duration_s: 90,
        seed: 7,
        record_timeline: false,
        controller_period_ms: 2_000,
    };
    let outcome = ctx.compare(&cell);
    // At 85% load Rhythm out-produces Heracles (whose loadlimit is 0.85).
    assert!(
        outcome.rhythm.be_throughput >= outcome.heracles.be_throughput,
        "rhythm {} vs heracles {}",
        outcome.rhythm.be_throughput,
        outcome.heracles.be_throughput
    );
    assert!(outcome.rhythm.emu >= outcome.heracles.emu);
}

#[test]
fn solo_latency_is_monotone_in_load_for_every_app() {
    for service in apps::all_apps() {
        let p99 = |load: f64| {
            Engine::new(service.clone(), EngineConfig::solo(load, 25, 3))
                .run()
                .p99_ms()
        };
        let lo = p99(0.2);
        let hi = p99(0.95);
        assert!(
            hi > lo,
            "{}: p99 {lo:.1} at 20% vs {hi:.1} at 95%",
            service.name
        );
    }
}

#[test]
fn controller_actions_follow_algorithm_2_in_vivo() {
    // Drive a managed engine through distinct load phases and verify the
    // observed action mix: growth during slack, suspension at overload.
    let service = apps::solr();
    let mut cfg = EngineConfig::solo(0.3, 120, 13);
    cfg.bes = vec![BeSpec::of(BeKind::Wordcount)];
    cfg.sla_ms = 2_000.0;
    cfg.record_timeline = true;
    cfg.load = LoadGen::Trace {
        samples: vec![0.3, 0.3, 0.3, 0.98, 0.98, 0.3],
        interval: rhythm::sim::SimDuration::from_secs(20),
    };
    cfg.mode = ControlMode::Managed {
        thresholds: vec![Thresholds::new(0.9, 0.05); 2],
    };
    let out = Engine::new(service, cfg).run();
    let grew = out
        .timeline
        .iter()
        .any(|p| p.be_cores.iter().sum::<u32>() > 0);
    assert!(grew, "BE population grew during the low-load phase");
    // During the overload phase (load > loadlimit 0.9) running BE cores
    // drop to zero at some point.
    let overload_suspended = out
        .timeline
        .iter()
        .filter(|p| p.load > 0.92)
        .any(|p| p.be_throughput.iter().sum::<f64>() == 0.0);
    assert!(overload_suspended, "suspension during overload");
    for pod in &out.pods {
        let stats = pod.agent.expect("managed run has agents");
        assert!(stats.ticks > 0);
        let allow = stats.action_counts[BeAction::AllowBeGrowth.severity() as usize];
        assert!(allow > 0, "growth happened");
    }
}

#[test]
fn deterministic_across_identical_runs() {
    let ctx_a = ServiceContext::prepare(apps::redis(), &[BeSpec::of(BeKind::Lstm)], 21);
    let ctx_b = ServiceContext::prepare(apps::redis(), &[BeSpec::of(BeKind::Lstm)], 21);
    assert_eq!(ctx_a.sla_ms, ctx_b.sla_ms);
    for (a, b) in ctx_a
        .thresholds
        .thresholds
        .iter()
        .zip(&ctx_b.thresholds.thresholds)
    {
        assert_eq!(a.loadlimit, b.loadlimit);
        assert_eq!(a.slacklimit, b.slacklimit);
    }
    let cell = ExperimentConfig {
        bes: vec![BeSpec::of(BeKind::Lstm)],
        load: LoadGen::constant(0.6),
        duration_s: 40,
        seed: 21,
        record_timeline: false,
        controller_period_ms: 2_000,
    };
    let (_, ma) = ctx_a.run(ControllerChoice::Rhythm, &cell);
    let (_, mb) = ctx_b.run(ControllerChoice::Rhythm, &cell);
    assert_eq!(ma.emu, mb.emu);
    assert_eq!(ma.p99_ms, mb.p99_ms);
}

#[test]
fn suspended_be_keeps_memory_in_vivo() {
    // Overload suspends BEs; the machine accounting must show retained
    // memory (SuspendBE semantics) rather than kills.
    let service = apps::elasticsearch();
    let mut cfg = EngineConfig::solo(0.5, 80, 17);
    cfg.bes = vec![BeSpec::of(BeKind::ImageClassify)];
    cfg.sla_ms = 50_000.0; // Generous: the overload must trip the loadlimit, not StopBE.
    cfg.record_timeline = true;
    cfg.load = LoadGen::Trace {
        samples: vec![0.4, 0.6, 0.93, 0.93],
        interval: rhythm::sim::SimDuration::from_secs(20),
    };
    cfg.mode = ControlMode::Managed {
        thresholds: vec![Thresholds::new(0.85, 0.05); 2],
    };
    let out = Engine::new(service, cfg).run();
    // Find a timeline point in the overload phase with instances alive
    // but zero throughput: suspended, not killed.
    let suspended_point = out.timeline.iter().find(|p| {
        p.load > 0.88
            && p.be_instances.iter().sum::<u32>() > 0
            && p.be_throughput.iter().sum::<f64>() == 0.0
    });
    assert!(
        suspended_point.is_some(),
        "found a suspended-but-alive BE population"
    );
}
