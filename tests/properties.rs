//! Property-based tests (proptest) over the core invariants.
//!
//! DESIGN.md §6 lists the invariants: event-calendar ordering, histogram
//! quantile bounds, tracer mean-sojourn invariance (the §3.3 identity),
//! contribution/threshold monotonicity, machine resource-accounting
//! safety under arbitrary controller action sequences, and the cluster
//! queue's EDF-within-priority total order (with aging anti-starvation
//! and class preservation across StopBE requeues).
//!
//! The final block runs whole cluster simulations per case (capped via
//! `proptest_config`) and checks the chaos invariants of DESIGN.md §13:
//! any fault plan leaves the run bit-reproducible across shard and
//! worker-thread layouts, and the job ledger's recovery accounting
//! never wastes more than one checkpoint interval per kill.

use proptest::prelude::*;
use rhythm::cluster::{run_cluster, ClusterConfig, FaultPlan, JobQueue, JobState};
use rhythm::core::experiment::{ControllerChoice, ServiceContext};
use rhythm::sim::SimRng;
use rhythm::workloads::{apps, BeKind, BeSpec, LoadGen};
use std::sync::OnceLock;
use rhythm::analyzer::find_loadlimit;
use rhythm::analyzer::slacklimit::find_slacklimits;
use rhythm::machine::{Allocation, Machine, MachineSpec};
use rhythm::sim::{Arena, Calendar, LatencyHistogram, SimTime};
use rhythm::tracer::capture::{chain_visit, CaptureConfig, EventCapture};
use rhythm::tracer::Pairer;

proptest! {
    #[test]
    fn calendar_pops_in_nondecreasing_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = cal.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    #[test]
    fn calendar_is_fifo_for_equal_times(n in 1usize..100) {
        let mut cal = Calendar::new();
        let t = SimTime::from_millis(5);
        for i in 0..n {
            cal.schedule(t, i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn histogram_quantile_bounded_by_extremes(values in prop::collection::vec(0.001f64..1e6, 1..500), p in 0.0f64..1.0) {
        let mut h = LatencyHistogram::new();
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        for &v in &values {
            h.record(v);
            min = min.min(v);
            max = max.max(v);
        }
        let q = h.quantile(p);
        // Within the histogram's relative error of the true range.
        prop_assert!(q <= max * 1.001 + 1e-9, "q={q} max={max}");
        prop_assert!(q >= min * 0.97 - 1e-9, "q={q} min={min}");
    }

    #[test]
    fn histogram_quantiles_are_monotone_in_p(values in prop::collection::vec(0.01f64..1e4, 2..300)) {
        let mut h = LatencyHistogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut last = 0.0;
        for i in 0..=20 {
            let q = h.quantile(i as f64 / 20.0);
            prop_assert!(q >= last - 1e-12);
            last = q;
        }
    }

    /// Splitting a stream of observations at any point and merging the
    /// two halves must reproduce the single-histogram sketch exactly
    /// (count, sum, max and every quantile) — the engine relies on this
    /// when windowed histograms are folded into run totals.
    #[test]
    fn histogram_merge_round_trips(values in prop::collection::vec(0.01f64..1e5, 1..400), split_at in 0usize..400) {
        let split = split_at.min(values.len());
        let mut whole = LatencyHistogram::new();
        let mut left = LatencyHistogram::new();
        let mut right = LatencyHistogram::new();
        for (i, &v) in values.iter().enumerate() {
            whole.record(v);
            if i < split { left.record(v) } else { right.record(v) }
        }
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        // Sums differ only by float re-association at the split point.
        prop_assert!((left.sum() - whole.sum()).abs() <= 1e-9 * whole.sum().max(1.0));
        prop_assert_eq!(left.max(), whole.max());
        for i in 0..=10 {
            let p = i as f64 / 10.0;
            prop_assert_eq!(left.quantile(p), whole.quantile(p), "p={}", p);
        }
    }

    /// Pre-allocation is invisible: a calendar built `with_capacity`
    /// yields the identical (time, event) sequence as a default one for
    /// any schedule, including ties resolved by FIFO order.
    #[test]
    fn calendar_with_capacity_round_trips(times in prop::collection::vec(0u64..1_000, 1..150), cap in 0usize..512) {
        let mut plain = Calendar::new();
        let mut sized = Calendar::with_capacity(cap);
        for (i, &t) in times.iter().enumerate() {
            plain.schedule(SimTime::from_micros(t), i);
            sized.schedule(SimTime::from_micros(t), i);
        }
        loop {
            let a = plain.pop();
            let b = sized.pop();
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        prop_assert_eq!(plain.now(), sized.now());
    }

    /// The request arena never hands out a key that aliases a live slot:
    /// live keys are pairwise distinct, stale keys observe `None`
    /// forever, and every live key reads back its own value — under
    /// arbitrary insert/remove/stale-probe interleavings.
    #[test]
    fn arena_never_reuses_a_live_slot(ops in prop::collection::vec(0u8..4, 1..300)) {
        let mut arena: Arena<u64> = Arena::new();
        let mut live: Vec<(rhythm::sim::arena::Key, u64)> = Vec::new();
        let mut stale: Vec<rhythm::sim::arena::Key> = Vec::new();
        let mut stamp = 0u64;
        for (i, op) in ops.iter().enumerate() {
            match op {
                // Insert (biased: two opcodes) so the slab both grows and
                // recycles.
                0 | 1 => {
                    stamp += 1;
                    let k = arena.insert(stamp);
                    prop_assert!(!live.iter().any(|&(l, _)| l == k), "key reissued while live");
                    live.push((k, stamp));
                }
                2 => {
                    if !live.is_empty() {
                        let (k, v) = live.swap_remove(i % live.len());
                        prop_assert_eq!(arena.remove(k), Some(v));
                        stale.push(k);
                    }
                }
                _ => {
                    if let Some(&k) = stale.get(i % stale.len().max(1)) {
                        prop_assert_eq!(arena.get(k), None, "stale key resolved");
                        prop_assert!(!arena.contains(k));
                    }
                }
            }
            prop_assert_eq!(arena.len(), live.len());
            for &(k, v) in &live {
                prop_assert_eq!(arena.get(k), Some(&v));
            }
        }
        // Slots, not keys, are recycled: capacity never exceeds the
        // high-water mark of simultaneously live values plus frees.
        prop_assert!(arena.capacity() <= ops.len());
    }

    /// Merging shards must not degrade accuracy: every quantile of the
    /// merged sketch stays within the advertised relative error of the
    /// exact quantile over the union of observations. The cluster runner
    /// relies on this when per-replica epoch windows are folded into the
    /// cluster-wide tail series.
    #[test]
    fn histogram_merged_quantiles_within_advertised_error(
        a in prop::collection::vec(0.01f64..1e5, 1..300),
        b in prop::collection::vec(0.01f64..1e5, 1..300),
    ) {
        let err = 0.01; // LatencyHistogram::new()'s advertised bound
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        for &v in &a { ha.record(v); }
        for &v in &b { hb.record(v); }
        ha.merge(&hb);
        let mut union: Vec<f64> = a.iter().chain(&b).copied().collect();
        union.sort_by(|x, y| x.partial_cmp(y).unwrap());
        for i in 0..=20 {
            let p = i as f64 / 20.0;
            let rank = ((p * union.len() as f64).ceil() as usize).clamp(1, union.len());
            let exact = union[rank - 1];
            let approx = ha.quantile(p);
            // Bucket boundaries give one gamma factor of slack on top of
            // the per-value error, hence 2.5 * err.
            prop_assert!(
                (approx - exact).abs() <= exact * 2.5 * err + 1e-9,
                "p={p} exact={exact} approx={approx}"
            );
        }
    }

    #[test]
    fn histogram_merge_count_is_additive(a in prop::collection::vec(0.01f64..1e4, 0..200), b in prop::collection::vec(0.01f64..1e4, 0..200)) {
        let mut ha = LatencyHistogram::new();
        let mut hb = LatencyHistogram::new();
        for &v in &a { ha.record(v); }
        for &v in &b { hb.record(v); }
        let (ca, cb) = (ha.count(), hb.count());
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), ca + cb);
    }

    /// The §3.3 identity: under a non-blocking single-threaded server
    /// with persistent connections, FIFO pairing preserves total (and
    /// hence mean) residence time per Servpod, for arbitrary request
    /// overlap patterns.
    #[test]
    fn tracer_mean_sojourn_invariance(
        offsets in prop::collection::vec(0u64..40, 1..30),
        pod1_ms in prop::collection::vec(1u64..30, 1..30),
    ) {
        let n = offsets.len().min(pod1_ms.len());
        let mut requests = Vec::new();
        let mut t = 0u64;
        for i in 0..n {
            t += offsets[i];
            let mid = pod1_ms[i];
            // Chain: pod0 (1 ms pre, 1 ms post) -> pod1 (mid ms).
            requests.push(chain_visit(
                &[0, 1],
                &[
                    vec![
                        (SimTime::from_millis(t), SimTime::from_millis(t + 1)),
                        (SimTime::from_millis(t + 1 + mid), SimTime::from_millis(t + 2 + mid)),
                    ],
                    vec![(SimTime::from_millis(t + 1), SimTime::from_millis(t + 1 + mid))],
                ],
            ));
        }
        let mut cap = EventCapture::new(
            CaptureConfig {
                non_blocking: true,
                persistent_connections: true,
                noise_events_per_request: 3,
                ..CaptureConfig::default()
            },
            42,
        );
        let mut truth = std::collections::BTreeMap::new();
        for r in &requests {
            cap.record_request(r);
            r.accumulate_sojourns(&mut truth);
        }
        let out = Pairer::new(0).pair(&cap.finish());
        for (pod, sojourns) in truth {
            let expect: f64 = sojourns.iter().sum();
            let got = out.total_residence(pod);
            prop_assert!((got - expect).abs() < 1e-6, "pod {pod}: {got} vs {expect}");
        }
    }

    #[test]
    fn loadlimit_is_one_of_the_loads(covs in prop::collection::vec(0.01f64..3.0, 2..40)) {
        let loads: Vec<f64> = (1..=covs.len()).map(|i| i as f64 / covs.len() as f64).collect();
        let ll = find_loadlimit(&loads, &covs);
        prop_assert!(loads.iter().any(|&l| (l - ll).abs() < 1e-12));
    }

    #[test]
    fn slacklimits_are_valid_fractions(contribs in prop::collection::vec(0.0f64..10.0, 1..8), stop_at in 0.05f64..0.95) {
        let r = find_slacklimits(&contribs, |cand| {
            cand.iter().sum::<f64>() / (cand.len() as f64) < stop_at
        });
        for &s in &r.slacklimits {
            prop_assert!((0.0..=1.0).contains(&s), "{s}");
        }
    }

    /// Machine resource accounting stays consistent under arbitrary
    /// interleavings of admit / grow / cut / suspend / resume / kill.
    #[test]
    fn machine_invariants_under_arbitrary_ops(ops in prop::collection::vec(0u8..6, 1..120), lc_cores in 1u32..30) {
        let mut m = Machine::new(
            MachineSpec::paper_testbed(),
            Allocation {
                cores: lc_cores,
                llc_ways: 0,
                mem_mb: 16 * 1024,
                net_mbps: 500.0,
                freq_mhz: 2_000,
            },
        );
        let mut ids: Vec<u64> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let pick = |ids: &Vec<u64>| ids.get(i % ids.len().max(1)).copied();
            match op {
                0 => {
                    if let Ok(id) = m.admit_be("job", Allocation {
                        cores: 1 + (i as u32 % 3),
                        llc_ways: (i as u32 % 4) * 2,
                        mem_mb: 1024,
                        net_mbps: 0.0,
                        freq_mhz: 2_000,
                    }) {
                        ids.push(id);
                    }
                }
                1 => {
                    if let Some(id) = pick(&ids) {
                        let _ = m.grow_be(id, Allocation::cores_and_llc(1, 2));
                    }
                }
                2 => {
                    if let Some(id) = pick(&ids) {
                        let _ = m.cut_be(id, Allocation::cores_and_llc(1, 2));
                    }
                }
                3 => {
                    if let Some(id) = pick(&ids) {
                        let _ = m.suspend_be(id);
                    }
                }
                4 => {
                    if let Some(id) = pick(&ids) {
                        let _ = m.resume_be(id);
                    }
                }
                _ => {
                    if let Some(id) = pick(&ids) {
                        let _ = m.kill_be(id);
                        ids.retain(|&x| x != id);
                    }
                }
            }
            prop_assert!(m.check_invariants().is_ok(), "after op {op} at step {i}: {:?}", m.check_invariants());
        }
        // StopBE from any state releases everything.
        m.kill_all_be();
        prop_assert_eq!(m.be_count(), 0);
        prop_assert_eq!(m.cat().be_ways(), 0);
        prop_assert!(m.check_invariants().is_ok());
    }

    #[test]
    fn pressure_is_bounded(cores in prop::collection::vec(1u32..6, 0..10)) {
        use rhythm::interference::Pressure;
        use rhythm::workloads::{BeKind, BeSpec};
        let mut m = Machine::new(
            MachineSpec::paper_testbed(),
            Allocation { cores: 8, llc_ways: 0, mem_mb: 8 * 1024, net_mbps: 100.0, freq_mhz: 2_000 },
        );
        let spec = BeSpec::of(BeKind::StreamDram { big: true });
        let mut specs = std::collections::BTreeMap::new();
        specs.insert(spec.name.clone(), spec.clone());
        for &c in &cores {
            let _ = m.admit_be(&spec.name, Allocation {
                cores: c, llc_ways: 0, mem_mb: 512, net_mbps: 0.0, freq_mhz: 2_000,
            });
        }
        let p = Pressure::from_machine(&m, &specs);
        for v in [p.cpu, p.llc, p.dram, p.net] {
            prop_assert!((0.0..=1.0).contains(&v), "{p:?}");
        }
    }

    #[test]
    fn queue_pops_edf_within_priority(jobs in prop::collection::vec((0u8..4, 0u64..3, 1u64..1000), 1..60)) {
        // Pop order is a total order: class (highest first), then
        // deadline (earliest first, undated last), then submission order.
        let meta: Vec<(u8, Option<f64>)> = jobs
            .iter()
            .map(|&(p, dated, d)| (p, (dated > 0).then_some(d as f64)))
            .collect();
        let mut q = JobQueue::new();
        for (i, &(p, dl)) in meta.iter().enumerate() {
            q.submit_with(i as u64, p, dl, 0.0);
        }
        let mut popped = Vec::new();
        while let Some(id) = q.pop() {
            popped.push(id);
        }
        prop_assert_eq!(popped.len(), meta.len());
        let key = |id: u64| {
            let (p, dl) = meta[id as usize];
            (u8::MAX - p, dl.map(f64::to_bits).unwrap_or(u64::MAX), id)
        };
        for w in popped.windows(2) {
            prop_assert!(
                key(w[0]) < key(w[1]),
                "pop order violated: {} (key {:?}) before {} (key {:?})",
                w[0], key(w[0]), w[1], key(w[1])
            );
        }
    }

    #[test]
    fn queue_aging_prevents_starvation(aging in 4.0f64..20.0, arrivals_per_epoch in 1usize..3) {
        // A lone class-0 job under a continuous stream of class-3
        // arrivals must still pop in bounded time — the lowest class
        // cannot starve. The arrivals age too, so the bound is not just
        // "three classes of aging": with one pop per epoch and `a`
        // arrivals per epoch, the oldest unserved arrival is about
        // (1 - 1/a)·e epochs old at epoch e, and the class-0 job
        // overtakes it once 2e/aging ≥ 3 + 2(1-1/a)e/aging, i.e. around
        // e = 3·aging·a/2 (epoch = 2 s); a few epochs of slack absorb
        // the floor() boundaries.
        let mut q = JobQueue::with_aging(aging);
        q.submit_with(0, 0, None, 0.0);
        let mut next_id = 1u64;
        let epoch = 2.0;
        let bound = (3.0 * aging * arrivals_per_epoch as f64 / epoch).ceil() as usize + 6;
        let mut popped_low = false;
        for e in 0..bound {
            let now = e as f64 * epoch;
            q.age(now);
            for _ in 0..arrivals_per_epoch {
                q.submit_with(next_id, 3, None, now);
                next_id += 1;
            }
            if q.pop() == Some(0) {
                popped_low = true;
                break;
            }
        }
        prop_assert!(
            popped_low,
            "class-0 job starved for {bound} epochs under continuous class-3 arrivals (aging {aging})"
        );
    }

    #[test]
    fn queue_requeue_preserves_class_and_order(
        jobs in prop::collection::vec((0u8..4, 0u64..3, 1u64..1000), 2..40),
        take in 1usize..10,
    ) {
        // StopBE pops and requeues work: the requeued jobs keep their
        // (class, deadline) rank, go in front of same-rank jobs that
        // never left, and keep their relative order among themselves.
        let meta: Vec<(u8, Option<f64>)> = jobs
            .iter()
            .map(|&(p, dated, d)| (p, (dated > 0).then_some(d as f64)))
            .collect();
        let mut q = JobQueue::new();
        for (i, &(p, dl)) in meta.iter().enumerate() {
            q.submit_with(i as u64, p, dl, 0.0);
        }
        let mut killed = Vec::new();
        for _ in 0..take.min(meta.len()) {
            if let Some(id) = q.pop() {
                killed.push(id);
            }
        }
        // Requeue in reverse pop order (as the dispatcher withdraws
        // offers) so the original relative order is restored.
        for &id in killed.iter().rev() {
            q.requeue(id);
        }
        let mut popped = Vec::new();
        while let Some(id) = q.pop() {
            popped.push(id);
        }
        prop_assert_eq!(popped.len(), meta.len());
        let rank = |id: u64| {
            let (p, dl) = meta[id as usize];
            (u8::MAX - p, dl.map(f64::to_bits).unwrap_or(u64::MAX))
        };
        let pos = |id: u64| popped.iter().position(|&x| x == id).unwrap();
        // The (class, deadline) total order survives the requeues.
        for w in popped.windows(2) {
            prop_assert!(rank(w[0]) <= rank(w[1]), "rank order violated after requeue");
        }
        // Requeued jobs precede same-rank jobs that never left the
        // queue, and keep their mutual pop order.
        for &k in &killed {
            for other in 0..meta.len() as u64 {
                if !killed.contains(&other) && rank(other) == rank(k) {
                    prop_assert!(
                        pos(k) < pos(other),
                        "requeued {k} should precede untouched same-rank {other}"
                    );
                }
            }
        }
        for w in killed.windows(2) {
            if rank(w[0]) == rank(w[1]) {
                prop_assert!(pos(w[0]) < pos(w[1]), "requeued jobs lost their mutual order");
            }
        }
    }
}

/// Encode → decode → re-encode; the re-encoding must be byte-identical
/// (snapshot encodings are canonical) and the reader fully consumed.
fn snapshot_round_trip<T: rhythm::snapshot::Snapshot>(x: &T) -> (T, Vec<u8>) {
    use rhythm::snapshot::{Reader, Writer};
    let mut w = Writer::new();
    x.encode(&mut w);
    let bytes = w.into_bytes();
    let mut r = Reader::new(&bytes);
    let y = T::decode(&mut r).expect("decode of a fresh encode");
    assert!(r.is_empty(), "decode left trailing bytes");
    let mut w2 = Writer::new();
    y.encode(&mut w2);
    assert_eq!(w2.into_bytes(), bytes, "re-encode is not canonical");
    (y, bytes)
}

// The case count honours `PROPTEST_CASES` (the vendored runner reads it,
// as upstream does), so CI smoke jobs can dial the effort down and soak
// runs can dial it up without editing the tests.
proptest! {
    // Queue section: a mid-stream queue (pops consumed, kills requeued
    // to the front, aging on or off) survives encode/decode with its
    // exact pop order.
    #[test]
    fn snapshot_queue_section_round_trips(
        jobs in prop::collection::vec(
            (0u8..4, prop::option::of(1.0f64..500.0), 0.0f64..100.0),
            1..40,
        ),
        pops in 0usize..40,
        aging in prop::option::of(1.0f64..60.0),
    ) {
        let mut q = match aging {
            Some(a) => JobQueue::with_aging(a),
            None => JobQueue::new(),
        };
        for (i, (p, d, t)) in jobs.iter().enumerate() {
            q.submit_with(i as u64, *p, *d, *t);
        }
        let mut popped = Vec::new();
        for _ in 0..pops.min(jobs.len()) {
            if let Some(id) = q.pop() {
                popped.push(id);
            }
        }
        // Requeue every other popped job: negative front sequences.
        for (k, &id) in popped.iter().enumerate() {
            if k % 2 == 0 {
                q.requeue_at(id, 50.0);
            }
        }
        let (mut decoded, _) = snapshot_round_trip(&q);
        let mut orig = q.clone();
        let a: Vec<_> = std::iter::from_fn(|| orig.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| decoded.pop()).collect();
        prop_assert_eq!(a, b, "decoded queue pops in a different order");
    }

    // Shard section: queue + outstanding offers + instance bindings.
    #[test]
    fn snapshot_shard_section_round_trips(
        ids in prop::collection::btree_set(0u64..500, 0..24),
        offered in prop::collection::vec(prop::option::of(0u64..500), 0..16),
        bindings in prop::collection::btree_map(
            (0u64..16, 0u64..4),
            0u64..500,
            0..20,
        ),
    ) {
        let mut queue = JobQueue::new();
        for &id in &ids {
            queue.submit(id);
        }
        let shard = rhythm::cluster::ShardState { queue, offered, bindings };
        let (decoded, _) = snapshot_round_trip(&shard);
        prop_assert_eq!(decoded.offered, shard.offered);
        prop_assert_eq!(decoded.bindings, shard.bindings);
        prop_assert_eq!(decoded.queue.queued_ids(), shard.queue.queued_ids());
    }

    // RNG section: a restored stream continues exactly where the
    // original left off, draw for draw.
    #[test]
    fn snapshot_rng_section_round_trips(
        seed in 0u64..u64::MAX,
        burn in 0usize..200,
        draws in 1usize..50,
    ) {
        let mut rng = SimRng::from_seed(seed);
        for _ in 0..burn {
            let _ = rng.uniform();
        }
        let (mut restored, _) = snapshot_round_trip(&rng);
        for _ in 0..draws {
            prop_assert_eq!(
                rng.uniform().to_bits(),
                restored.uniform().to_bits(),
                "restored RNG diverged from the original stream"
            );
        }
    }
}

/// One shared profiled context for the cluster-level fault properties
/// (Algorithm 1 dominates the wall-clock; profile once).
fn fault_ctx() -> &'static ServiceContext {
    static CTX: OnceLock<ServiceContext> = OnceLock::new();
    CTX.get_or_init(|| ServiceContext::prepare(apps::solr(), &[BeSpec::of(BeKind::Wordcount)], 31))
}

/// A small managed cell with `plan` active: short horizon, scaled jobs
/// so the backlog both completes and gets killed within it.
fn fault_cell(plan: FaultPlan, threads: usize, shards: usize, ckpt: f64) -> ClusterConfig {
    let mut c = ClusterConfig::new(2 * fault_ctx().service.len()).with_scaled_jobs(0.02);
    c.duration_s = 40;
    c.jobs_per_machine = 4;
    c.checkpoint_fraction = ckpt;
    c.load = LoadGen::constant(0.8);
    c.seed = 0xFA17;
    c.threads = threads;
    c.shards = shards;
    c.faults = plan;
    c
}

// Each case below runs whole cluster simulations — four orders of
// magnitude more expensive than the in-memory properties above — so
// the block pins its own case count instead of honouring
// `PROPTEST_CASES`.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Chaos does not break reproducibility: for an arbitrary fault
    /// plan (crashes, recoveries, stragglers, correlated failures at
    /// arbitrary epochs), the merged metrics serialize byte-identically
    /// and the per-machine fingerprints match across worker-thread and
    /// shard layouts.
    #[test]
    fn fault_runs_are_layout_invariant(
        ops in prop::collection::vec((0u8..4, 4u32..36, 0u64..32), 1..5),
        ckpt_pick in 0usize..3,
    ) {
        let machines = 2 * fault_ctx().service.len();
        let ckpt = [0.05, 0.1, 0.25][ckpt_pick];
        let mut plan = FaultPlan::new();
        for &(kind, t, m) in &ops {
            let (t, m) = (f64::from(t), m % machines as u64);
            plan = match kind {
                0 => plan.crash(t, m),
                1 => plan.recover(t, m),
                2 => plan.slow_node(t, m, 0.6),
                _ => plan.correlated(t, vec![m]),
            };
        }
        prop_assert!(plan.validate(machines).is_ok());
        let runs: Vec<_> = [(1usize, 1usize), (3, 2), (2, 4)]
            .iter()
            .map(|&(threads, shards)| {
                run_cluster(
                    fault_ctx(),
                    &ControllerChoice::Rhythm,
                    &fault_cell(plan.clone(), threads, shards, ckpt),
                )
            })
            .collect();
        let baseline = serde_json::to_string(&runs[0].metrics).expect("metrics serialize");
        for r in &runs[1..] {
            let other = serde_json::to_string(&r.metrics).expect("metrics serialize");
            prop_assert_eq!(&other, &baseline, "metrics diverged across layouts");
            prop_assert_eq!(&r.fingerprints, &runs[0].fingerprints, "machine fingerprints diverged");
        }
    }

    /// Recovery accounting: a kill rolls a job back to its last banked
    /// checkpoint, so the work a fault destroys is bounded — per job,
    /// `wasted ≤ kills × checkpoint_fraction` (one open interval per
    /// kill), checkpoints stay in `[0, 1]`, and a finished job is fully
    /// checkpointed. The merged stats must agree with the ledger they
    /// were derived from, and every kill re-enters the queue.
    #[test]
    fn job_ledger_accounts_for_recovery(
        crashes in prop::collection::vec((4u32..20, 0u64..32, 6u32..16), 1..4),
        ckpt in 0.05f64..0.5,
    ) {
        let machines = 2 * fault_ctx().service.len();
        let mut plan = FaultPlan::new();
        for &(t, m, dt) in &crashes {
            let m = m % machines as u64;
            plan = plan.crash(f64::from(t), m).recover(f64::from(t + dt), m);
        }
        let out = run_cluster(
            fault_ctx(),
            &ControllerChoice::Rhythm,
            &fault_cell(plan, 2, 2, ckpt),
        );
        prop_assert!(!out.jobs.is_empty());
        let mut kills = 0u64;
        let mut wasted = 0.0;
        for j in &out.jobs {
            prop_assert!(
                (0.0..=1.0).contains(&j.checkpoint),
                "job {} checkpoint {} out of range", j.id, j.checkpoint
            );
            prop_assert!(j.wasted.is_finite() && j.wasted >= 0.0);
            prop_assert!(
                j.wasted <= f64::from(j.kills) * ckpt + 1e-9,
                "job {}: wasted {} exceeds {} kills x {} checkpoint interval",
                j.id, j.wasted, j.kills, ckpt
            );
            if j.kills == 0 {
                prop_assert_eq!(j.wasted, 0.0, "waste without a kill");
            }
            if j.state == JobState::Done {
                prop_assert_eq!(j.checkpoint, 1.0, "done but not fully checkpointed");
                prop_assert!(j.completed_s.is_some());
            } else {
                prop_assert!(j.completed_s.is_none(), "completed_s on an unfinished job");
            }
            kills += u64::from(j.kills);
            wasted += j.wasted;
        }
        prop_assert_eq!(out.metrics.jobs.kills, kills, "merged kill count disagrees with the ledger");
        prop_assert!((out.metrics.jobs.wasted_jobs - wasted).abs() <= 1e-9);
        prop_assert!(out.metrics.requeues >= kills, "every kill re-enters the queue");
    }
}
