//! The durable-state contract, end to end: a run snapshotted at epoch k
//! and resumed to the horizon is **bit-identical** to a run that never
//! stopped — same machine fingerprints, same metrics, same telemetry
//! exports — for any shard count K and any worker-thread count.
//!
//! One straight-through reference run stands in for every grid cell:
//! sharding and threading are already proven observation-invariant, so
//! each (K, threads) resume must land on the same bytes.

use rhythm::prelude::*;
use rhythm::workloads::apps;

const CAPTURE_EPOCH: u32 = 7;

fn ctx() -> ServiceContext {
    ServiceContext::prepare(apps::solr(), &[BeSpec::of(BeKind::Wordcount)], 11)
}

fn cfg(shards: usize, threads: usize) -> ClusterConfig {
    // 16 machines over solr's 2 Servpods = 8 replicas, enough for K=8.
    let mut c = ClusterConfig::new(16).with_scaled_jobs(0.02);
    c.duration_s = 40;
    c.jobs_per_machine = 2;
    c.load = LoadGen::constant(0.5);
    c.shards = shards;
    c.threads = threads;
    c.telemetry = TelemetryConfig::full();
    c
}

fn assert_identical(a: &ClusterOutcome, b: &ClusterOutcome, what: &str) {
    assert_eq!(a.fingerprints, b.fingerprints, "{what}: machine fingerprints");
    assert_eq!(a.metrics.jobs, b.metrics.jobs, "{what}: job stats");
    assert_eq!(a.metrics.requeues, b.metrics.requeues, "{what}: requeues");
    assert_eq!(
        a.metrics.completed_requests, b.metrics.completed_requests,
        "{what}: completed requests"
    );
    let (ta, tb) = (
        a.telemetry.as_ref().expect("telemetry on"),
        b.telemetry.as_ref().expect("telemetry on"),
    );
    assert_eq!(ta.export_jsonl(), tb.export_jsonl(), "{what}: jsonl export");
    assert_eq!(ta.chrome_trace(), tb.chrome_trace(), "{what}: chrome trace");
    assert_eq!(ta.why_report(), tb.why_report(), "{what}: why report");
}

#[test]
fn resume_matches_straight_run_across_shard_and_thread_grid() {
    let ctx = ctx();
    let mut fingerprints_across_k = None;

    for shards in [1usize, 8] {
        // Telemetry *events* legitimately differ across K (shard steals
        // are tagged with the destination shard), so the bit-identity
        // reference is per-K; fingerprints and metrics stay K-invariant
        // and are cross-checked below.
        let reference = run_cluster(&ctx, &ControllerChoice::Rhythm, &cfg(shards, 1));
        match &fingerprints_across_k {
            None => fingerprints_across_k = Some(reference.fingerprints.clone()),
            Some(fp) => assert_eq!(fp, &reference.fingerprints, "sharding changed results"),
        }

        // Capture once per K (on one worker thread), resume on both
        // thread counts: the snapshot must not remember how it was made.
        let capture_run = ClusterRunner::new(&ctx, &ControllerChoice::Rhythm, &cfg(shards, 1))
            .snapshot_at(CAPTURE_EPOCH)
            .run();
        assert_identical(
            &reference,
            &capture_run.outcome,
            &format!("K={shards} capturing run"),
        );
        let bytes = capture_run.snapshots[0].1.to_bytes();

        for threads in [1usize, 4] {
            let snap = ClusterSnapshot::from_bytes(&bytes).expect("snapshot bytes parse");
            let c = cfg(shards, threads);
            let resumed = ClusterRunner::resume(&snap, &ctx, &ControllerChoice::Rhythm, &c)
                .expect("snapshot matches its config")
                .run();
            assert_identical(
                &reference,
                &resumed.outcome,
                &format!("K={shards} threads={threads} resumed run"),
            );
        }
    }
}

#[test]
fn snapshot_files_reject_corruption_and_truncation() {
    let ctx = ctx();
    let run = ClusterRunner::new(&ctx, &ControllerChoice::Rhythm, &cfg(1, 1))
        .snapshot_at(CAPTURE_EPOCH)
        .run();
    let bytes = run.snapshots[0].1.to_bytes();

    // Format-version bump: refused as Incompatible, not mis-decoded.
    let mut wrong_version = bytes.clone();
    wrong_version[4] ^= 0xFF; // version is the u32 after the 4-byte magic
    assert!(matches!(
        ClusterSnapshot::from_bytes(&wrong_version),
        Err(SnapshotError::Incompatible { .. })
    ));

    // Schema-hash drift (a crate changed its layout): also Incompatible.
    // Layout: magic(4) + version(u32) + schema count(u64) + first entry's
    // name (u64 length prefix + bytes) + its u64 hash — flip a hash byte.
    let name_len = rhythm::cluster::expected_schemas()[0].0.len();
    let hash_byte = 4 + 4 + 8 + 8 + name_len;
    let mut wrong_schema = bytes.clone();
    wrong_schema[hash_byte] ^= 0xFF;
    assert!(matches!(
        ClusterSnapshot::from_bytes(&wrong_schema),
        Err(SnapshotError::Incompatible { .. })
    ));

    // Truncation anywhere: an error, never a panic or a silent partial
    // decode.
    for cut in [3usize, 16, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            ClusterSnapshot::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} must fail"
        );
    }

    // Trailing garbage is refused too.
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(ClusterSnapshot::from_bytes(&padded).is_err());
}
