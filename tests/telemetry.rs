//! End-to-end guarantees of the telemetry subsystem.
//!
//! Three promises are checked against whole cluster runs:
//!
//! 1. **Thread-count invariance** — the JSONL and Chrome-trace exports
//!    of a fully-instrumented run are byte-identical for 1 and 8 worker
//!    threads (per-replica streams are recorded inside each engine; the
//!    cluster tail is merged single-threaded in replica order at the
//!    epoch barriers).
//! 2. **Observation is free** — enabling telemetry does not perturb the
//!    simulation: per-machine fingerprints and merged metrics match an
//!    uninstrumented run bit-for-bit.
//! 3. **The streams are populated** — a managed run produces flight
//!    recorder events, a non-empty decision audit trail whose records
//!    explain themselves, and per-epoch tail points.
//! 4. **Faults are observable and invariant** — with a fault plan
//!    active, the cluster event stream carries the machine-lifecycle
//!    events (fault_injected / machine_down / machine_up) and the
//!    exports remain byte-identical across worker-thread counts.

use rhythm::prelude::*;
use rhythm::telemetry::EventKind;
use std::sync::OnceLock;

/// One shared profiled context (Algorithm 1 dominates test wall-clock).
fn ctx() -> &'static ServiceContext {
    static CTX: OnceLock<ServiceContext> = OnceLock::new();
    CTX.get_or_init(|| ServiceContext::prepare(apps::solr(), &[BeSpec::of(BeKind::Wordcount)], 11))
}

fn cell(threads: usize, telemetry: TelemetryConfig) -> ClusterConfig {
    let mut c = ClusterConfig::new(2 * ctx().service.len()).with_scaled_jobs(0.02);
    c.duration_s = 60;
    c.jobs_per_machine = 3;
    c.load = LoadGen::constant(0.8);
    c.seed = 0x7E1E;
    c.threads = threads;
    c.telemetry = telemetry;
    c
}

#[test]
fn exports_are_thread_count_invariant() {
    let serial = run_cluster(ctx(), &ControllerChoice::Rhythm, &cell(1, TelemetryConfig::full()));
    let parallel = run_cluster(ctx(), &ControllerChoice::Rhythm, &cell(8, TelemetryConfig::full()));
    let (ts, tp) = (serial.telemetry.unwrap(), parallel.telemetry.unwrap());
    assert!(ts.decisions() > 0, "no decisions audited");
    assert_eq!(ts.export_jsonl(), tp.export_jsonl(), "JSONL export diverged across thread counts");
    assert_eq!(ts.chrome_trace(), tp.chrome_trace(), "Chrome trace diverged across thread counts");
    assert_eq!(ts.why_report(), tp.why_report());
}

#[test]
fn telemetry_does_not_perturb_the_simulation() {
    let off = run_cluster(ctx(), &ControllerChoice::Rhythm, &cell(4, TelemetryConfig::disabled()));
    let on = run_cluster(ctx(), &ControllerChoice::Rhythm, &cell(4, TelemetryConfig::full()));
    assert!(off.telemetry.is_none());
    assert!(on.telemetry.is_some());
    assert_eq!(
        off.fingerprints, on.fingerprints,
        "enabling telemetry changed per-machine results"
    );
    let a = serde_json::to_string(&off.metrics).unwrap();
    let b = serde_json::to_string(&on.metrics).unwrap();
    assert_eq!(a, b, "enabling telemetry changed merged metrics");
}

#[test]
fn fault_exports_are_thread_count_invariant() {
    let faulted = |threads: usize| {
        let mut c = cell(threads, TelemetryConfig::full());
        c.faults = FaultPlan::new()
            .crash(14.0, 1)
            .slow_node(20.0, 2, 0.6)
            .recover(34.0, 1)
            .recover(44.0, 2);
        run_cluster(ctx(), &ControllerChoice::Rhythm, &c)
    };
    let serial = faulted(1);
    let parallel = faulted(8);
    let (ts, tp) = (serial.telemetry.unwrap(), parallel.telemetry.unwrap());
    // The machine-lifecycle events are in the stream, in plan order.
    let kinds: Vec<&ClusterEventKind> = ts.cluster_events.iter().map(|e| &e.kind).collect();
    let count = |want: ClusterEventKind| kinds.iter().filter(|k| ***k == want).count();
    assert_eq!(count(ClusterEventKind::FaultInjected), 4, "{kinds:?}");
    assert_eq!(count(ClusterEventKind::MachineDown), 1);
    assert_eq!(count(ClusterEventKind::MachineUp), 2, "crash + straggler recoveries");
    let down = ts
        .cluster_events
        .iter()
        .find(|e| e.kind == ClusterEventKind::MachineDown)
        .expect("machine_down recorded");
    assert_eq!(down.job, 1, "machine_down carries the global machine index");
    // Byte-identical exports for any worker-thread count, faults active.
    assert_eq!(
        ts.export_jsonl(),
        tp.export_jsonl(),
        "JSONL export diverged across thread counts under faults"
    );
    assert_eq!(
        ts.chrome_trace(),
        tp.chrome_trace(),
        "Chrome trace diverged across thread counts under faults"
    );
    assert_eq!(serial.fingerprints, parallel.fingerprints);
    // The JSONL lines name the fault events.
    let jsonl = ts.export_jsonl();
    for needle in ["fault_injected", "machine_down", "machine_up"] {
        assert!(jsonl.contains(needle), "JSONL export lacks {needle}");
    }
}

#[test]
fn streams_are_populated_and_self_describing() {
    let outcome = run_cluster(ctx(), &ControllerChoice::Rhythm, &cell(4, TelemetryConfig::full()));
    let tel = outcome.telemetry.unwrap();
    assert!(!tel.replicas.is_empty());
    assert!(!tel.cluster_tail.is_empty(), "no cluster tail points merged");
    for (r, rep) in tel.replicas.iter().enumerate() {
        assert!(rep.recorded > 0, "replica {r}: flight recorder empty");
        assert!(!rep.audit.is_empty(), "replica {r}: audit trail empty");
        assert!(!rep.tail.is_empty(), "replica {r}: tail series empty");
        // Every action in the ring has a matching audit record at its
        // timestamp (the recorder may additionally have wrapped).
        let actions = rep
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Action { .. }))
            .count();
        assert!(actions > 0, "replica {r}: no Action events recorded");
        for rec in &rep.audit {
            let why = rec.why();
            assert!(why.contains("because"), "unexplained decision: {why}");
            assert!(rec.slacklimit >= 0.0 && rec.loadlimit > 0.0);
        }
    }
    // The JSONL export has the meta line plus one line per record.
    let jsonl = tel.export_jsonl();
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(lines[0].contains("\"rhythm-trace/v1\""), "bad meta line: {}", lines[0]);
    assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
    let records: usize = tel
        .replicas
        .iter()
        .map(|r| r.events.len() + r.audit.len() + r.tail.len())
        .sum::<usize>()
        + tel.cluster_tail.len();
    assert_eq!(lines.len(), 1 + records);
    // The Chrome trace is one JSON document with the required envelope.
    let chrome = tel.chrome_trace();
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.contains("\"ph\":"));
}
