//! Offline stand-in for `criterion`, covering the surface the
//! `rhythm-bench` benches use: `black_box`, `Criterion` with
//! `sample_size`/`measurement_time`/`warm_up_time`, `bench_function`,
//! `benchmark_group` + `bench_with_input` + `finish`, `BenchmarkId`, and
//! the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: after a short warm-up the closure
//! runs for up to `measurement_time` split over `sample_size` samples, and
//! the per-iteration minimum/mean are printed. No statistics, plots or
//! baselines — just enough to run `cargo bench` and read numbers.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, name, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(cfg: &Criterion, name: &str, f: &mut F) {
    // Warm-up: repeat single iterations until the warm-up budget is spent,
    // which also yields a per-iteration estimate.
    let warm_start = Instant::now();
    let mut est = Duration::ZERO;
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < cfg.warm_up_time || warm_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        est += b.elapsed;
        warm_iters += 1;
        if warm_iters >= 1_000 {
            break;
        }
    }
    let per_iter = est / warm_iters.max(1) as u32;
    let budget_per_sample = cfg.measurement_time / cfg.sample_size as u32;
    let iters_per_sample = if per_iter.is_zero() {
        1_000
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters_per_sample as u32;
        if per < min {
            min = per;
        }
        total += b.elapsed;
        total_iters += iters_per_sample;
    }
    let mean = total / total_iters.max(1) as u32;
    println!(
        "bench: {name:<50} min {:>12} mean {:>12} ({} samples x {} iters)",
        format!("{min:?}"),
        format!("{mean:?}"),
        cfg.sample_size,
        iters_per_sample
    );
}

pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_bench(self.c, &label, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_bench(self.c, &label, &mut |b| f(b, input));
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n.max(1);
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runner_smoke() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        c.bench_function("smoke/add", |b| b.iter(|| black_box(1u64 + 1)));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(3u64), &3u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }
}
