//! Offline stand-in for the `crossbeam` crate, covering the surface
//! `rhythm-bench::parallel_map` uses: [`scope`] with [`Scope::spawn`]
//! (closures that receive `&Scope`, like upstream) and
//! [`queue::SegQueue`].
//!
//! `scope` delegates to `std::thread::scope`; a panic in any spawned
//! thread surfaces as `Err`, matching upstream semantics. `SegQueue` is a
//! mutex-protected `VecDeque` — adequate for the coarse-grained work
//! items the harness pushes through it.

use std::any::Any;

/// Scoped-thread handle passed to [`scope`]'s closure and to each spawned
/// closure.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives this scope (so it can
    /// spawn further threads), like upstream crossbeam.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || {
            let s = Scope { inner };
            f(&s)
        })
    }
}

/// Creates a scope for spawning borrowing threads. Returns `Err` with the
/// panic payload if the closure or any (unjoined) spawned thread panicked.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        })
    }))
}

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::Mutex;

    /// An unbounded MPMC queue (mutex-backed in this stand-in).
    pub struct SegQueue<T> {
        inner: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        pub fn new() -> Self {
            SegQueue {
                inner: Mutex::new(VecDeque::new()),
            }
        }

        pub fn push(&self, value: T) {
            self.inner.lock().expect("SegQueue poisoned").push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.inner.lock().expect("SegQueue poisoned").pop_front()
        }

        pub fn len(&self) -> usize {
            self.inner.lock().expect("SegQueue poisoned").len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::SegQueue;

    #[test]
    fn scoped_threads_share_queue() {
        let q: SegQueue<usize> = SegQueue::new();
        for i in 0..100 {
            q.push(i);
        }
        let total = std::sync::atomic::AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    while let Some(v) = q.pop() {
                        total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        })
        .expect("no panics");
        assert_eq!(total.into_inner(), (0..100).sum());
        assert!(q.is_empty());
    }

    #[test]
    fn panics_surface_as_err() {
        let r = super::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_compiles() {
        let r = super::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 21).join().map(|v| v * 2).unwrap_or(0))
                .join()
                .unwrap_or(0)
        });
        assert_eq!(r.expect("ok"), 42);
    }
}
