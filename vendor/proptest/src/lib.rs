//! Offline stand-in for `proptest`, covering the surface the repo's
//! property tests use: the [`proptest!`] macro with `arg in strategy`
//! parameters, range strategies (exclusive and inclusive) over the
//! numeric primitives, [`any`], [`Strategy::prop_map`],
//! `prop::collection::vec`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Each test runs a fixed number of deterministic random cases (seeded
//! from the test name, so failures reproduce). There is no shrinking: a
//! failing case panics with the assertion message directly.

/// Default number of random cases each `proptest!` test executes.
pub const CASES: usize = 64;

/// Number of random cases each `proptest!` test executes: the
/// `PROPTEST_CASES` environment variable when set to a positive integer
/// (as upstream proptest honours it — CI cranks this up), [`CASES`]
/// otherwise.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(CASES)
}

/// Per-block runner configuration, as upstream's
/// `#![proptest_config(...)]` inner attribute. Tests whose cases are
/// expensive (whole cluster runs rather than in-memory data
/// structures) use an explicit [`ProptestConfig::with_cases`] to cap
/// the count; an explicit config wins over `PROPTEST_CASES`, exactly
/// as upstream's does.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test in the block executes.
    pub cases: usize,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: cases() }
    }
}

impl ProptestConfig {
    /// A config running exactly `cases` cases, like upstream's.
    pub fn with_cases(cases: usize) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// A small deterministic RNG (SplitMix64) driving case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`, as upstream's `prop_map`.
    /// This is how dependent draws are expressed (e.g. `busy` in
    /// `0..=workers`): draw independent seeds, then derive.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Marker strategy for a type's full value domain, as upstream's
/// `any::<T>()`.
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy drawing uniformly from `T`'s entire domain.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_strategy_int_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_strategy_int_range_inclusive {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty strategy range");
                let span = (*self.end() as u64)
                    .wrapping_sub(*self.start() as u64)
                    .wrapping_add(1);
                // span == 0 means the range covers the full 64-bit
                // domain; every draw is in range.
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                self.start().wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_strategy_int_range_inclusive!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// A strategy producing a fixed value, like upstream's `Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_tuple! {
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Size specification for collection strategies.
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n + 1 }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A strategy for `Vec`s of `elem` values with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A strategy for `BTreeSet`s of `elem` values. Duplicate draws
    /// collapse, so the final set may be smaller than the drawn length
    /// (upstream retries; this stand-in keeps generation single-pass).
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// A strategy for `BTreeMap`s with `key`/`value` entries. Duplicate
    /// keys collapse (last value wins), as with [`btree_set`].
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span.max(1)) as usize;
            (0..len)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod option {
    use super::{Strategy, TestRng};

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// A strategy for `Option`s: `None` one draw in four, `Some(inner)`
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy,
    };

    pub mod prop {
        pub use crate::{collection, option};
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::cases() {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -5i64..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u8..6, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            for e in v {
                prop_assert!(e < 6);
            }
        }
    }

    static CONFIG_CASES_RUN: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]
        fn runs_exactly_three_cases(x in 0u64..10) {
            prop_assert!(x < 10);
            CONFIG_CASES_RUN.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn explicit_config_caps_the_case_count() {
        runs_exactly_three_cases();
        assert_eq!(CONFIG_CASES_RUN.load(std::sync::atomic::Ordering::Relaxed), 3);
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn cases_defaults_without_env() {
        // The test harness does not set PROPTEST_CASES; parsing garbage
        // or zero must fall back to the default too (checked by
        // inspection of `cases`'s filter — here just pin the default).
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(crate::cases(), crate::CASES);
        }
    }
}
