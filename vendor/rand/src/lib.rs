//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments without a crates-io mirror, so the
//! external crates are vendored as minimal API-compatible implementations
//! (see `vendor/README.md`). This crate covers exactly the surface
//! `rhythm-sim` uses: [`rngs::StdRng`], [`RngCore`], [`SeedableRng`],
//! [`Rng::gen`] and [`Rng::gen_range`].
//!
//! The generator is xoshiro256++ rather than upstream's ChaCha12: it is
//! tiny, fast and passes the statistical checks in `rhythm-sim`'s tests.
//! Streams are therefore *not* bit-compatible with upstream `rand`; all
//! reproducibility guarantees in this workspace are defined against this
//! implementation.

/// Error type for fallible RNG operations. The generators here are
/// infallible, so this is never constructed.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut s);
            let bytes = v.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable as `Rng::gen_range(start..end)` bounds.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                // Lemire's unbiased multiply-and-reject.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                range.start.wrapping_add((m >> 64) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u64, u32, usize, i64, i32);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self {
        let u = f64::sample_standard(rng);
        range.start + (range.end - range.start) * u
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (not upstream's ChaCha12; see
    /// the crate docs for the compatibility note).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0, 0, 0, 0] {
                // xoshiro must not start from the all-zero state.
                let mut st = 0x9E37_79B9_7F4A_7C15u64;
                for word in s.iter_mut() {
                    *word = super::splitmix64(&mut st);
                }
            }
            StdRng { s }
        }
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for mid-stream checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a captured [`StdRng::state`]. The
        /// restored stream continues exactly where the captured one
        /// stood. An all-zero state (never produced by a live xoshiro
        /// generator) is remapped the same way `from_seed` remaps it.
        pub fn from_state(s: [u64; 4]) -> StdRng {
            if s == [0, 0, 0, 0] {
                let mut bytes = [0u8; 32];
                for (i, word) in s.iter().enumerate() {
                    bytes[i * 8..i * 8 + 8].copy_from_slice(&word.to_le_bytes());
                }
                return StdRng::from_seed(bytes);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::from_seed([7; 32]);
        let mut b = StdRng::from_seed([7; 32]);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..17);
            assert!((10..17).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(r.try_fill_bytes(&mut buf).is_ok());
    }
}
