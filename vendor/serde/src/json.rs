//! The JSON value tree that [`crate::Serialize`] targets, with compact and
//! pretty printers. Re-exported by the vendored `serde_json` as its `Value`.

use std::fmt;

/// A JSON value.
///
/// Unlike upstream `serde_json`, numbers are split into `Int`/`UInt`/`Float`
/// variants instead of a `Number` wrapper; object keys preserve insertion
/// order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn float_to_json(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Ensure the token stays a number (e.g. "1" stays "1.0"-free is
        // fine in JSON; nothing to add).
    } else {
        // JSON has no NaN/Infinity; upstream serde_json emits null.
        out.push_str("null");
    }
}

impl Value {
    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(i) => out.push_str(&i.to_string()),
            Value::UInt(u) => out.push_str(&u.to_string()),
            Value::Float(f) => float_to_json(*f, out),
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&" ".repeat(indent + STEP));
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push(']');
            }
            Value::Object(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&" ".repeat(indent + STEP));
                    escape_into(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent));
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Compact JSON text.
    pub fn to_json_string(&self) -> String {
        let mut s = String::new();
        self.write_compact(&mut s);
        s
    }

    /// Pretty-printed JSON text (2-space indent).
    pub fn to_json_string_pretty(&self) -> String {
        let mut s = String::new();
        self.write_pretty(&mut s, 0);
        s
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json_string())
    }
}

impl crate::Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
