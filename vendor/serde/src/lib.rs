//! Offline stand-in for the `serde` crate.
//!
//! This workspace builds in environments without a crates-io mirror, so the
//! external crates are vendored as minimal API-compatible implementations
//! (see `vendor/README.md`). Instead of upstream's serializer/visitor
//! machinery, [`Serialize`] converts a value into a [`json::Value`] tree
//! which the vendored `serde_json` prints. That covers everything the
//! workspace does with serde: `#[derive(Serialize, Deserialize)]` plus
//! `serde_json::{json!, to_writer_pretty}`.
//!
//! [`Deserialize`] is a marker with a blanket impl — nothing in the
//! workspace deserializes, but the derive and trait bounds must compile.

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

/// Serialization into a JSON value tree.
pub trait Serialize {
    fn to_value(&self) -> json::Value;
}

/// Marker standing in for upstream's `Deserialize`. Blanket-implemented;
/// the derive emits nothing.
pub trait Deserialize<'de> {}

impl<'de, T> Deserialize<'de> for T {}

/// Upstream-compatible module paths.
pub mod ser {
    pub use crate::Serialize;
}

pub mod de {
    pub use crate::Deserialize;
}

// ---- Serialize impls for the primitive and std types the workspace uses ----

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value {
                json::Value::Int(*self as i64)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value {
                json::Value::UInt(*self as u64)
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);

impl Serialize for u128 {
    fn to_value(&self) -> json::Value {
        if let Ok(v) = u64::try_from(*self) {
            json::Value::UInt(v)
        } else {
            json::Value::Float(*self as f64)
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> json::Value {
        json::Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> json::Value {
        json::Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> json::Value {
        json::Value::String(self.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> json::Value {
        json::Value::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> json::Value {
        match self {
            Some(v) => v.to_value(),
            None => json::Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> json::Value {
        self[..].to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> json::Value {
        self[..].to_value()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> json::Value {
        json::Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> json::Value {
        json::Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::HashMap<K, V> {
    fn to_value(&self) -> json::Value {
        // Sort for deterministic output (upstream preserves hash order).
        let mut pairs: Vec<(String, json::Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        json::Value::Object(pairs)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> json::Value {
                json::Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}

impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
