//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the item
//! shapes this workspace actually derives on: non-generic structs with named
//! fields, tuple structs, unit structs, and enums whose variants are unit,
//! named-field or tuple. No `#[serde(...)]` attributes are supported — the
//! workspace uses none.
//!
//! The generated `Serialize` impl targets the vendored `serde` crate's
//! value-tree trait (`fn to_value(&self) -> serde::json::Value`), which the
//! vendored `serde_json` then prints. `Deserialize` expands to nothing: the
//! vendored `serde` provides a blanket impl and nothing in the workspace
//! deserializes.
//!
//! Parsing is done directly over `proc_macro::TokenStream` (no syn/quote),
//! and code is generated as source text and re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Skips any number of outer attributes (`#[...]`, including desugared doc
/// comments) at the cursor.
fn skip_attrs(toks: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < toks.len() {
        match (&toks[i], &toks[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(toks: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = toks.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses named fields out of a `{ ... }` group body, returning field names.
fn parse_named_fields(body: &TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        i = skip_vis(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected field name, got {other}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive stub: expected ':' after field name, got {other}"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Counts the fields of a tuple struct/variant `( ... )` body.
fn count_tuple_fields(body: &TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    for t in &toks {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma does not add a field.
    if let Some(TokenTree::Punct(p)) = toks.last() {
        if p.as_char() == ',' && depth == 0 {
            count -= 1;
        }
    }
    count
}

fn parse_enum_variants(body: &TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        i = skip_attrs(&toks, i);
        if i >= toks.len() {
            break;
        }
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive stub: expected variant name, got {other}"),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(&g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip a possible discriminant and the separating comma.
        while i < toks.len() {
            if let TokenTree::Punct(p) = &toks[i] {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&toks, 0);
    i = skip_vis(&toks, i);
    let is_enum = match &toks[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" => false,
        TokenTree::Ident(id) if id.to_string() == "enum" => true,
        other => panic!("serde_derive stub: expected struct/enum, got {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic types are not supported (derive on `{name}`)");
        }
    }
    let kind = if is_enum {
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_enum_variants(&g.stream()))
            }
            other => panic!("serde_derive stub: expected enum body, got {other}"),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde_derive stub: unexpected struct body: {other:?}"),
        }
    };
    Item { name, kind }
}

/// Emits the statements that build a `__obj` vec of (name, value) pairs.
fn named_field_pushes(fields: &[String], accessor: &str) -> String {
    let mut src = String::new();
    src.push_str(&format!(
        "let mut __obj: ::std::vec::Vec<(::std::string::String, ::serde::json::Value)> = \
         ::std::vec::Vec::with_capacity({});\n",
        fields.len()
    ));
    for f in fields {
        src.push_str(&format!(
            "__obj.push((::std::string::String::from(\"{f}\"), \
             ::serde::Serialize::to_value({accessor}{f})));\n"
        ));
    }
    src
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.kind {
        Kind::UnitStruct => "::serde::json::Value::Null".to_string(),
        Kind::TupleStruct(0) => "::serde::json::Value::Null".to_string(),
        // Newtype structs serialize transparently, like upstream serde.
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "::serde::json::Value::Array(::std::vec![{}])",
                elems.join(", ")
            )
        }
        Kind::NamedStruct(fields) => format!(
            "{}::serde::json::Value::Object(__obj)",
            named_field_pushes(fields, "&self.")
        ),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "Self::{vn} => ::serde::json::Value::String(\
                         ::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantFields::Named(fields) => {
                        let binds = fields.join(", ");
                        let pushes = named_field_pushes(fields, "");
                        arms.push_str(&format!(
                            "Self::{vn} {{ {binds} }} => {{\n{pushes}\
                             ::serde::json::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::json::Value::Object(__obj))])\n}}\n"
                        ));
                    }
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "::serde::json::Value::Array(::std::vec![{}])",
                                elems.join(", ")
                            )
                        };
                        arms.push_str(&format!(
                            "Self::{vn}({}) => ::serde::json::Value::Object(::std::vec![(\
                             ::std::string::String::from(\"{vn}\"), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    let src = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::json::Value {{\n{body}\n}}\n\
         }}\n"
    );
    src.parse().expect("serde_derive stub: generated code failed to parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    // The vendored serde has a blanket Deserialize impl; nothing to emit.
    TokenStream::new()
}
