//! Offline stand-in for `serde_json`, over the vendored `serde`'s value
//! tree. Provides [`Value`], [`json!`], [`to_value`], [`to_string`],
//! [`to_string_pretty`], [`to_writer`] and [`to_writer_pretty`].
//!
//! Divergences from upstream: numbers are `Int`/`UInt`/`Float` variants
//! (no `Number` wrapper); the writer helpers return `std::io::Result`
//! (serialization itself is infallible here); `json!` supports literal
//! keys and expression values — nested object literals must be written as
//! nested `json!` calls, which is how the workspace already uses it.

pub use serde::json::Value;

use serde::Serialize;
use std::io::Write;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

/// Compact JSON text for any serializable value.
pub fn to_string<T: Serialize + ?Sized>(v: &T) -> std::io::Result<String> {
    Ok(v.to_value().to_json_string())
}

/// Pretty JSON text for any serializable value.
pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> std::io::Result<String> {
    Ok(v.to_value().to_json_string_pretty())
}

/// Writes compact JSON to `w`.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut w: W, v: &T) -> std::io::Result<()> {
    w.write_all(v.to_value().to_json_string().as_bytes())
}

/// Writes pretty JSON (2-space indent, trailing newline) to `w`.
pub fn to_writer_pretty<W: Write, T: Serialize + ?Sized>(mut w: W, v: &T) -> std::io::Result<()> {
    w.write_all(v.to_value().to_json_string_pretty().as_bytes())?;
    w.write_all(b"\n")
}

/// Builds a [`Value`] from a JSON-ish literal. Keys must be string
/// literals; values are arbitrary serializable expressions (use a nested
/// `json!` for an object value).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "a": 1u64,
            "b": [1.5f64, 2.5f64],
            "c": json!({"nested": true}),
            "s": "x\"y",
        });
        assert_eq!(
            v.to_json_string(),
            r#"{"a":1,"b":[1.5,2.5],"c":{"nested":true},"s":"x\"y"}"#
        );
    }

    #[test]
    fn pretty_round_trips_shapes() {
        let v = json!({"k": [1u64, 2u64], "empty": Vec::<u64>::new()});
        let s = v.to_json_string_pretty();
        assert!(s.contains("\"k\": [\n"));
        assert!(s.contains("\"empty\": []"));
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(json!(f64::NAN).to_json_string(), "null");
        assert_eq!(json!(f64::INFINITY).to_json_string(), "null");
    }
}
